package tailbench

import (
	"fmt"
	"io"
	"time"

	"tailbench/internal/trace"
)

// TraceSpec enables request-level tracing on a run: the harness records a
// span tree per measured request — queue wait, service, synthetic network
// RTT, fan-out children, hedge duplicates, and the fan-in wait on the slowest
// child — and retains the K slowest trees per window in a bounded reservoir.
// The report decomposes the retained tails into their causes (see
// TraceComponents) and the retained trees export to Chrome trace-event JSON
// via WriteChromeTrace. A nil *TraceSpec (the default) keeps tracing off and
// the dispatch hot paths allocation-free.
//
// Simulated runs produce bit-reproducible traces at a fixed seed. The
// single-server simulated mode (the calibrated application model) records no
// traces; every other path — live single-server, both cluster engines, and
// both pipeline engines — does.
type TraceSpec struct {
	// TopK is the number of slowest span trees retained per window
	// (default 8).
	TopK int
	// Window is the attribution window width on the run's time axis; zero
	// keeps the whole run as a single window.
	Window time.Duration
}

// recorder builds the internal recorder for the spec; nil spec means tracing
// off.
func (s *TraceSpec) recorder() *trace.Recorder {
	if s == nil {
		return nil
	}
	return trace.NewRecorder(s.TopK, s.Window)
}

// TraceReport is the tail-attribution report of a traced run: windowed
// decomposition of the retained tails into queueing, service, network,
// straggler, and hedge components, plus the retained span trees themselves
// (slowest first). The decomposition is exact by construction — a retained
// root's components sum to its sojourn — so a reported tail reconciles
// against its attribution.
type TraceReport = trace.Report

// TraceSpan is one node of a request's span tree.
type TraceSpan = trace.Span

// RequestTrace is one retained root request: its attribution plus the full
// span tree in canonical (Start, ID) order.
type RequestTrace = trace.RequestTrace

// TraceComponents is a root sojourn decomposed into causes:
// Queue+Service+Net+Hedge+Straggler equals the sojourn.
type TraceComponents = trace.Components

// TraceWindow is one window's tail attribution.
type TraceWindow = trace.Window

// WriteChromeTrace renders retained request traces as Chrome trace-event
// JSON: load the output in Perfetto (ui.perfetto.dev) or chrome://tracing to
// inspect fan-out critical paths visually. Each retained request renders as
// one named track; output bytes are deterministic for a given trace set.
func WriteChromeTrace(w io.Writer, traces []RequestTrace) error {
	return trace.WriteChrome(w, traces)
}

// WriteTraceAttribution renders a tail-attribution report as text: the mean
// decomposition of the retained (slowest) roots with percentage shares, the
// per-window breakdown when the report is windowed, and the single slowest
// root. Both the tailbench CLI and tailbench-report use it so the live and
// replayed views render identically. A nil or empty report prints nothing.
func WriteTraceAttribution(w io.Writer, rep *TraceReport) {
	if rep == nil || len(rep.Slowest) == 0 {
		return
	}
	fmt.Fprintf(w, "tail attribution (%d slowest of %d roots):\n", len(rep.Slowest), rep.Roots)
	writeAttrRow(w, "  ", rep.Attr)
	if len(rep.Windows) > 1 {
		fmt.Fprintf(w, "  %-16s %-9s %-12s %-12s %-12s %-12s %-12s %s\n",
			"window", "retained", "slowest", "queue", "service", "net", "hedge", "straggler")
		for _, win := range rep.Windows {
			fmt.Fprintf(w, "  %-16s %-9d %-12v %-12v %-12v %-12v %-12v %v\n",
				fmt.Sprintf("%v..%v", win.Start.Round(time.Millisecond), win.End.Round(time.Millisecond)),
				win.Retained, win.Slowest.Round(time.Microsecond),
				win.Attr.Queue.Round(time.Microsecond), win.Attr.Service.Round(time.Microsecond),
				win.Attr.Net.Round(time.Microsecond), win.Attr.Hedge.Round(time.Microsecond),
				win.Attr.Straggler.Round(time.Microsecond))
		}
	}
	worst := rep.Slowest[0]
	fmt.Fprintf(w, "  slowest root: %v at +%v (%d spans)\n",
		worst.Sojourn.Round(time.Microsecond), worst.At.Round(time.Millisecond), len(worst.Spans))
}

// writeAttrRow renders one decomposition with percentage shares of its total.
func writeAttrRow(w io.Writer, indent string, a TraceComponents) {
	total := a.Total()
	pct := func(d time.Duration) float64 {
		if total <= 0 {
			return 0
		}
		return 100 * float64(d) / float64(total)
	}
	fmt.Fprintf(w, "%squeue=%v (%.0f%%) service=%v (%.0f%%) net=%v (%.0f%%) hedge=%v (%.0f%%) straggler=%v (%.0f%%)\n",
		indent,
		a.Queue.Round(time.Microsecond), pct(a.Queue),
		a.Service.Round(time.Microsecond), pct(a.Service),
		a.Net.Round(time.Microsecond), pct(a.Net),
		a.Hedge.Round(time.Microsecond), pct(a.Hedge),
		a.Straggler.Round(time.Microsecond), pct(a.Straggler))
}
