// Package tailbench is the public API of the TailBench suite: a set of
// latency-critical applications and a load-testing harness that measures
// their tail latency with a statistically robust, open-loop methodology, as
// described in "TailBench: A Benchmark Suite and Evaluation Methodology for
// Latency-Critical Applications" (Kasture & Sanchez, IISWC 2016).
//
// The typical flow is:
//
//	spec := tailbench.RunSpec{App: "masstree", Mode: tailbench.ModeIntegrated, QPS: 2000, Requests: 5000}
//	res, err := tailbench.Run(spec)
//	fmt.Println(res.Sojourn.P95)
//
// Eight applications are available (see Apps): xapian, masstree, moses,
// sphinx, img-dnn, specjbb, silo, and shore. Four measurement modes mirror
// the paper's harness configurations: integrated (in-process), loopback
// (TCP over localhost), networked (TCP plus synthetic NIC/switch delay), and
// simulated (a calibrated discrete-event model standing in for a
// microarchitectural simulator).
package tailbench

import (
	"fmt"
	"sort"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/apps/imgdnn"
	"tailbench/internal/apps/masstree"
	"tailbench/internal/apps/moses"
	"tailbench/internal/apps/shore"
	"tailbench/internal/apps/silo"
	"tailbench/internal/apps/specjbb"
	"tailbench/internal/apps/sphinx"
	"tailbench/internal/apps/xapian"
	"tailbench/internal/core"
	"tailbench/internal/sim"
	"tailbench/internal/stats"
	"tailbench/internal/workload"
)

// Mode selects a harness configuration (Fig. 1 of the paper).
type Mode int

// Harness configurations.
const (
	// ModeIntegrated runs client, harness, and application in one process.
	ModeIntegrated Mode = iota
	// ModeLoopback runs the application behind TCP on the loopback device.
	ModeLoopback
	// ModeNetworked adds a synthetic NIC+switch delay on top of loopback,
	// standing in for a multi-machine deployment.
	ModeNetworked
	// ModeSimulated runs the calibrated discrete-event system model instead
	// of the real application (the simulator stand-in).
	ModeSimulated
)

// String returns the mode name used in reports.
func (m Mode) String() string {
	switch m {
	case ModeIntegrated:
		return "integrated"
	case ModeLoopback:
		return "loopback"
	case ModeNetworked:
		return "networked"
	case ModeSimulated:
		return "simulated"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode converts a mode name ("integrated", "loopback", "networked",
// "simulated") to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "integrated":
		return ModeIntegrated, nil
	case "loopback":
		return ModeLoopback, nil
	case "networked":
		return ModeNetworked, nil
	case "simulated":
		return ModeSimulated, nil
	default:
		return 0, fmt.Errorf("tailbench: unknown mode %q", s)
	}
}

// MarshalText encodes the mode by name, so JSON result files stay
// self-describing and stable if the constant block ever changes.
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText decodes a mode name.
func (m *Mode) UnmarshalText(text []byte) error {
	parsed, err := ParseMode(string(text))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// kind converts a Mode to the internal configuration kind.
func (m Mode) kind() core.ConfigKind {
	switch m {
	case ModeLoopback:
		return core.Loopback
	case ModeNetworked:
		return core.Networked
	case ModeSimulated:
		return core.Simulated
	default:
		return core.Integrated
	}
}

// registry maps application names to their factories.
var registry = map[string]app.Factory{
	"xapian":   xapian.Factory{},
	"masstree": masstree.Factory{},
	"moses":    moses.Factory{},
	"sphinx":   sphinx.Factory{},
	"img-dnn":  imgdnn.Factory{},
	"specjbb":  specjbb.Factory{},
	"silo":     silo.Factory{},
	"shore":    shore.Factory{},
}

// Apps returns the names of all applications in the suite, sorted.
func Apps() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ErrUnknownApp is returned for application names not in the registry.
type ErrUnknownApp struct{ Name string }

// Error implements error.
func (e ErrUnknownApp) Error() string {
	return fmt.Sprintf("tailbench: unknown application %q (available: %v)", e.Name, Apps())
}

// RunSpec describes one measurement.
type RunSpec struct {
	// App is the application name (see Apps).
	App string
	// Mode is the harness configuration.
	Mode Mode
	// QPS is the offered load; 0 means saturation (back-to-back requests).
	// Shorthand for Load: Constant(QPS); ignored when Load is set.
	QPS float64
	// Load is the arrival process driving the open-loop traffic shaper:
	// any built-in shape (Constant, Diurnal, Ramp, Spike, Burst, Trace) or
	// a custom LoadShape. Nil means Constant(QPS).
	Load LoadShape
	// Window is the width of the time-windowed latency accounting in the
	// result. Zero enables windows automatically (a twentieth of the run's
	// horizon) when Load is time-varying and disables them for
	// constant-rate runs; a negative value disables them entirely.
	Window time.Duration
	// Threads is the number of application worker threads (default 1).
	Threads int
	// Clients is the number of client connections for the loopback and
	// networked modes (default derived from Threads).
	Clients int
	// Requests is the number of measured requests (default 1000).
	Requests int
	// Warmup is the number of discarded warmup requests. Zero means the
	// default (10% of Requests, with a 50-request floor in live modes); a
	// negative value means no warmup at all — the explicit-zero spelling,
	// since 0 is taken by the default.
	Warmup int
	// Scale shrinks or grows the application dataset (default 1.0).
	Scale float64
	// Seed makes the run reproducible (default 1).
	Seed int64
	// KeepRaw retains every latency sample in the result.
	KeepRaw bool
	// Validate makes clients check every response.
	Validate bool
	// NetworkDelay overrides the synthetic one-way network delay of the
	// networked mode (default 25µs).
	NetworkDelay time.Duration
	// Repeats > 1 repeats the run with fresh seeds and aggregates, per the
	// paper's confidence-interval methodology.
	Repeats int
	// IdealMemory simulates a zero-latency, infinite-bandwidth memory system
	// (simulated mode only) — the Sec. VII ablation.
	IdealMemory bool
	// PerfError overrides the simulated system's constant performance error
	// factor (simulated mode only; default per application).
	PerfError float64
	// CalibrationRequests sets how many requests calibrate the simulated
	// model (simulated mode only; default 300).
	CalibrationRequests int
	// Trace enables request-level tracing and tail attribution (see
	// TraceSpec); nil keeps tracing off and the hot path allocation-free.
	// The simulated mode's calibrated application model records no traces.
	Trace *TraceSpec
	// Metrics, when non-nil, receives live counters and latency histograms
	// as the run progresses (live modes only); results are identical with or
	// without it.
	Metrics *MetricsRegistry
}

// LatencyStats summarizes one latency stream.
type LatencyStats struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
	Min   time.Duration
}

func fromSummary(s stats.LatencySummary) LatencyStats {
	return LatencyStats{Count: s.Count, Mean: s.Mean, P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max, Min: s.Min}
}

// CDFPoint is one point of a cumulative latency distribution.
type CDFPoint struct {
	Value      time.Duration
	Cumulative float64
}

// Result is the outcome of a measurement run.
type Result struct {
	App  string
	Mode Mode
	// Shape names the arrival process family ("constant", "diurnal", ...)
	// and ShapeSpec its canonical parameter encoding, re-parseable with
	// ParseLoadShape, so saved results are self-describing.
	Shape     string `json:",omitempty"`
	ShapeSpec string `json:",omitempty"`
	// OfferedQPS is the configured arrival rate — for time-varying shapes,
	// the mean rate over the run's horizon.
	OfferedQPS  float64
	AchievedQPS float64
	Threads     int
	Requests    uint64
	Errors      uint64
	Queue       LatencyStats
	Service     LatencyStats
	Sojourn     LatencyStats
	ServiceCDF  []CDFPoint
	SojournCDF  []CDFPoint
	// ServiceSamples and SojournSamples are present when KeepRaw was set.
	ServiceSamples []time.Duration
	SojournSamples []time.Duration
	// Windows is the time-windowed latency series (see WindowStats);
	// present when windowed accounting is enabled — automatic for
	// time-varying load shapes, opt-in via RunSpec.Window otherwise.
	Windows []WindowStats `json:",omitempty"`
	Elapsed time.Duration
	Runs    int
	// P95CIRelative is the relative half-width of the 95% confidence
	// interval of the p95 sojourn latency across repeated runs (0 if the run
	// was not repeated).
	P95CIRelative float64
	// IdealMemory records whether the simulated run used the idealized
	// memory system.
	IdealMemory bool
	// Trace is the tail-attribution report when tracing was enabled.
	Trace *TraceReport `json:",omitempty"`
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s [%s] threads=%d qps=%.1f p95=%v p99=%v mean=%v n=%d err=%d",
		r.App, r.Mode, r.Threads, r.OfferedQPS,
		r.Sojourn.P95.Round(time.Microsecond), r.Sojourn.P99.Round(time.Microsecond),
		r.Sojourn.Mean.Round(time.Microsecond), r.Requests, r.Errors)
}

// appConfig builds the internal application configuration from a spec.
func (s RunSpec) appConfig() app.Config {
	return app.Config{Threads: s.Threads, Scale: s.Scale, Seed: s.Seed}.Normalize()
}

// runConfig builds the internal harness configuration from a spec.
func (s RunSpec) runConfig() core.RunConfig {
	return core.RunConfig{
		QPS:            s.QPS,
		Load:           s.Load,
		Window:         s.Window,
		Threads:        s.Threads,
		Clients:        s.Clients,
		Requests:       s.Requests,
		WarmupRequests: s.Warmup,
		Seed:           s.Seed,
		KeepRaw:        s.KeepRaw,
		Validate:       s.Validate,
		NetworkDelay:   s.NetworkDelay,
		Metrics:        s.Metrics,
	}
}

// factoryFor resolves the application factory for a spec.
func factoryFor(name string) (app.Factory, error) {
	f, ok := registry[name]
	if !ok {
		return nil, ErrUnknownApp{Name: name}
	}
	return f, nil
}

// NewServer constructs an application server directly. Most users should
// call Run instead; NewServer is useful for embedding an application behind
// a custom harness (e.g. the NetServer in examples/configcompare).
func NewServer(name string, threads int, scale float64, seed int64) (app.Server, error) {
	f, err := factoryFor(name)
	if err != nil {
		return nil, err
	}
	return f.NewServer(app.Config{Threads: threads, Scale: scale, Seed: seed}.Normalize())
}

// Run executes one measurement according to the spec.
func Run(spec RunSpec) (*Result, error) {
	f, err := factoryFor(spec.App)
	if err != nil {
		return nil, err
	}
	if spec.Mode == ModeSimulated {
		return runSimulated(spec, f)
	}
	cfg := spec.appConfig()
	server, err := f.NewServer(cfg)
	if err != nil {
		return nil, fmt.Errorf("tailbench: building %s server: %w", spec.App, err)
	}
	defer server.Close()
	clientFactory := func(seed int64) (app.Client, error) { return f.NewClient(cfg, seed) }

	rec := spec.Trace.recorder()
	runCfg := spec.runConfig()
	runCfg.Trace = rec
	var res *core.Result
	if spec.Repeats > 1 {
		res, err = core.RunRepeated(spec.Mode.kind(), server, clientFactory, runCfg,
			core.RepeatOptions{MinRuns: spec.Repeats, MaxRuns: spec.Repeats})
	} else {
		res, err = core.SingleRun(spec.Mode.kind(), server, clientFactory, runCfg)
	}
	if err != nil {
		return nil, err
	}
	out := fromCore(spec, res)
	out.Trace = rec.Report()
	return out, nil
}

// fromCore converts an internal result to the public type.
func fromCore(spec RunSpec, res *core.Result) *Result {
	out := &Result{
		App:            res.App,
		Mode:           spec.Mode,
		Shape:          res.Shape,
		ShapeSpec:      res.ShapeSpec,
		OfferedQPS:     res.OfferedQPS,
		AchievedQPS:    res.AchievedQPS,
		Threads:        res.Threads,
		Requests:       res.Requests,
		Errors:         res.Errors,
		Queue:          fromSummary(res.Queue),
		Service:        fromSummary(res.Service),
		Sojourn:        fromSummary(res.Sojourn),
		ServiceSamples: res.ServiceSamples,
		SojournSamples: res.SojournSamples,
		Elapsed:        res.Elapsed,
		Runs:           res.Runs,
	}
	if res.Runs > 1 {
		out.P95CIRelative = res.P95CI.Relative()
	}
	for _, p := range res.ServiceCDF {
		out.ServiceCDF = append(out.ServiceCDF, CDFPoint{Value: p.Value, Cumulative: p.Cumulative})
	}
	for _, p := range res.SojournCDF {
		out.SojournCDF = append(out.SojournCDF, CDFPoint{Value: p.Value, Cumulative: p.Cumulative})
	}
	out.Windows = fromWindowStats(res.Windows)
	return out
}

// fromWindowStats converts the internal windowed series to the public type.
func fromWindowStats(ws []stats.WindowStat) []WindowStats {
	if len(ws) == 0 {
		return nil
	}
	out := make([]WindowStats, len(ws))
	for i, w := range ws {
		out[i] = WindowStats{
			Start:       w.Start,
			End:         w.End,
			Requests:    w.Requests,
			Errors:      w.Errors,
			OfferedQPS:  w.OfferedQPS,
			AchievedQPS: w.AchievedQPS,
			Replicas:    w.Replicas,
			Mean:        w.Mean,
			P50:         w.P50,
			P95:         w.P95,
			P99:         w.P99,
			Max:         w.Max,
		}
	}
	return out
}

// MeasureServiceTimes measures uncontended single-threaded service times of
// an application (used for Fig. 2 CDFs, saturation estimation, and simulator
// calibration).
func MeasureServiceTimes(appName string, scale float64, seed int64, requests int) ([]time.Duration, error) {
	f, err := factoryFor(appName)
	if err != nil {
		return nil, err
	}
	cfg := app.Config{Scale: scale, Seed: seed}.Normalize()
	server, err := f.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	defer server.Close()
	clientFactory := func(s int64) (app.Client, error) { return f.NewClient(cfg, s) }
	return core.MeasureServiceTimes(server, clientFactory, requests, seed)
}

// SaturationQPS estimates the single-node saturation throughput for the
// given number of worker threads from measured service times:
// threads / mean service time.
func SaturationQPS(serviceTimes []time.Duration, threads int) float64 {
	if len(serviceTimes) == 0 || threads < 1 {
		return 0
	}
	mean := stats.MeanDuration(serviceTimes)
	if mean <= 0 {
		return 0
	}
	return float64(threads) / mean.Seconds()
}

// Calibrate builds a simulated-system model for an application from measured
// service times, using the suite's default per-application performance-error
// and contention coefficients (override via RunSpec.PerfError).
func Calibrate(appName string, serviceTimes []time.Duration, perfError float64) (*sim.AppModel, error) {
	if perfError <= 0 {
		perfError = sim.DefaultPerfError(appName)
	}
	mem, sync := sim.DefaultContention(appName)
	return sim.Calibrate(appName, serviceTimes, perfError, mem, sync)
}

// runSimulated measures the application on the simulated system: calibrate a
// model from the real application at low load, then run the discrete-event
// simulation at the requested load.
func runSimulated(spec RunSpec, f app.Factory) (*Result, error) {
	calReq := spec.CalibrationRequests
	if calReq <= 0 {
		calReq = 300
	}
	samples, err := MeasureServiceTimes(spec.App, spec.Scale, spec.Seed, calReq)
	if err != nil {
		return nil, fmt.Errorf("tailbench: calibrating %s: %w", spec.App, err)
	}
	model, err := Calibrate(spec.App, samples, spec.PerfError)
	if err != nil {
		return nil, err
	}
	threads := spec.Threads
	if threads < 1 {
		threads = 1
	}
	requests := spec.Requests
	if requests <= 0 {
		requests = 1000
	}
	warmup := spec.Warmup
	if warmup == 0 {
		warmup = requests / 10
	} else if warmup < 0 {
		warmup = 0
	}
	simRes, err := model.Run(sim.RunParams{
		QPS:         spec.QPS,
		Load:        spec.Load,
		Window:      spec.Window,
		Threads:     threads,
		Requests:    requests,
		Warmup:      warmup,
		Seed:        workload.SplitSeed(spec.Seed, 5),
		IdealMemory: spec.IdealMemory,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		App:         spec.App,
		Mode:        ModeSimulated,
		Shape:       simRes.Shape,
		ShapeSpec:   simRes.ShapeSpec,
		OfferedQPS:  simRes.QPS,
		AchievedQPS: simRes.QPS,
		Windows:     fromWindowStats(simRes.Windows),
		Threads:     threads,
		Requests:    simRes.Sojourn.Count,
		Queue:       fromSummary(simRes.Queue),
		Service:     fromSummary(simRes.Service),
		Sojourn:     fromSummary(simRes.Sojourn),
		Runs:        1,
		IdealMemory: spec.IdealMemory,
	}
	if spec.KeepRaw {
		out.ServiceSamples = simRes.ServiceSamples
		out.SojournSamples = simRes.SojournSamples
	}
	for _, p := range stats.SampleCDF(simRes.ServiceSamples) {
		out.ServiceCDF = append(out.ServiceCDF, CDFPoint{Value: p.Value, Cumulative: p.Cumulative})
	}
	for _, p := range stats.SampleCDF(simRes.SojournSamples) {
		out.SojournCDF = append(out.SojournCDF, CDFPoint{Value: p.Value, Cumulative: p.Cumulative})
	}
	return out, nil
}

// RunClosedLoop measures an application with a conventional closed-loop load
// tester (the flawed methodology the paper contrasts against); used by the
// coordinated-omission experiment.
func RunClosedLoop(spec RunSpec) (*Result, error) {
	f, err := factoryFor(spec.App)
	if err != nil {
		return nil, err
	}
	cfg := spec.appConfig()
	server, err := f.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	defer server.Close()
	clientFactory := func(seed int64) (app.Client, error) { return f.NewClient(cfg, seed) }
	res, err := core.RunClosedLoop(server, clientFactory, spec.runConfig())
	if err != nil {
		return nil, err
	}
	return fromCore(spec, res), nil
}

// SystemDescription returns the Table II style description of the simulated
// system.
func SystemDescription() string {
	return sim.DefaultSystemConfig().String()
}
