package tailbench

import (
	"time"

	"tailbench/internal/metrics"
)

// MetricsRegistry is a live metrics surface: a set of named atomic counters,
// gauges, and latency histograms the harness updates as a run progresses.
// Attach one to a RunSpec, ClusterSpec, or PipelineSpec and the dispatchers,
// replicas, and net servers publish completions, errors, queue depths, and
// sojourn quantiles into it concurrently with the run; reported results are
// identical with or without one. Expose it over HTTP with ServeMetrics or
// poll it with StartMetricsProgress.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry builds an empty live metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// MetricsServer is a running metrics HTTP endpoint serving a registry:
// /metrics in the Prometheus text exposition format, /debug/vars and
// /metrics.json in expvar-style JSON.
type MetricsServer = metrics.Server

// ServeMetrics exposes a registry on the given address (":0" picks a free
// port); scraping runs concurrently with the harness until Close.
func ServeMetrics(addr string, r *MetricsRegistry) (*MetricsServer, error) {
	return metrics.Serve(addr, r)
}

// StartMetricsProgress starts a background goroutine that renders a one-line
// snapshot of the registry every interval and hands it to print (e.g. a
// per-window progress line on stderr). The returned stop function halts it.
func StartMetricsProgress(r *MetricsRegistry, interval time.Duration, print func(string)) (stop func()) {
	return metrics.StartProgress(r, interval, print)
}
