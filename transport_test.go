package tailbench

import (
	"testing"
	"time"
)

// TestInProcessTransportGoldenDispatch pins the transport refactor's
// compatibility guarantee on the live path: with a deterministic balancer
// (random and roundrobin ignore queue state, so their pick sequence is a pure
// function of the seeded RNG and the precomputed arrival schedule), the
// per-replica dispatch counts of an integrated cluster run are exactly
// reproducible even though individual latencies follow the wall clock. The
// golden values below were captured from the pre-Transport dispatcher (the
// direct rep.queue send); the in-process transport must route every request
// to the same replica in the same order or these counts shift.
func TestInProcessTransportGoldenDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster run")
	}
	golden := map[string][]uint64{
		"random":     {507, 500, 493},
		"roundrobin": {500, 500, 500},
	}
	for policy, want := range golden {
		res, err := RunCluster(ClusterSpec{
			App:      "masstree",
			Mode:     ModeIntegrated,
			Policy:   policy,
			Replicas: 3,
			Threads:  1,
			QPS:      4000,
			Requests: 1500,
			Warmup:   -1,
			Scale:    0.05,
			Seed:     17,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerReplica) != 3 {
			t.Fatalf("%s: %d replicas, want 3", policy, len(res.PerReplica))
		}
		got := make([]uint64, len(res.PerReplica))
		for i, rep := range res.PerReplica {
			got[i] = rep.Dispatched
		}
		t.Logf("%s: dispatched %v", policy, got)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: replica %d dispatched %d, want %d (live dispatch order changed)", policy, i, got[i], want[i])
			}
		}
	}
}

// TestInProcessTransportGoldenPipeline extends the dispatch-order pin to the
// live pipeline path: a two-tier fan-out topology under the roundrobin policy
// routes deterministically, so the per-tier, per-replica dispatch counts are
// exact.
func TestInProcessTransportGoldenPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("live pipeline run")
	}
	res, err := RunPipeline(PipelineSpec{
		Mode: ModeIntegrated,
		Tiers: []TierSpec{
			{Cluster: ClusterSpec{App: "masstree", Policy: "roundrobin", Replicas: 2, Scale: 0.05}},
			{Cluster: ClusterSpec{App: "masstree", Policy: "roundrobin", Replicas: 3, Scale: 0.05}, FanOut: 2},
		},
		QPS:      2000,
		Requests: 600,
		Warmup:   -1,
		Seed:     17,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]uint64{{300, 300}, {400, 400, 400}}
	for ti, tier := range res.Tiers {
		got := make([]uint64, len(tier.PerReplica))
		for i, rep := range tier.PerReplica {
			got[i] = rep.Dispatched
		}
		t.Logf("tier %d: dispatched %v", ti, got)
		for i := range want[ti] {
			if got[i] != want[ti][i] {
				t.Errorf("tier %d replica %d dispatched %d, want %d (live dispatch order changed)", ti, i, got[i], want[ti][i])
			}
		}
	}
}

// TestNetworkedClusterFullReport exercises the public networked cluster mode
// end to end: a shaped (therefore windowed) run over per-replica NetServers
// must come back with the complete reporting surface — windowed series,
// per-replica rows, and validated responses.
func TestNetworkedClusterFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("live networked run")
	}
	res, err := RunCluster(ClusterSpec{
		App:          "masstree",
		Mode:         ModeNetworked,
		Policy:       "jsq2",
		Replicas:     3,
		Load:         Spike(1500, 3000, 200*time.Millisecond, 200*time.Millisecond),
		Requests:     900,
		Warmup:       100,
		Scale:        0.05,
		Seed:         11,
		Validate:     true,
		NetworkDelay: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeNetworked {
		t.Errorf("Mode = %v, want networked", res.Mode)
	}
	if res.Requests != 900 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 900/0", res.Requests, res.Errors)
	}
	if len(res.Windows) == 0 {
		t.Error("shaped networked run carries no windowed series")
	}
	if len(res.PerReplica) != 3 {
		t.Fatalf("PerReplica has %d entries, want 3", len(res.PerReplica))
	}
	for _, rep := range res.PerReplica {
		if rep.Dispatched == 0 || rep.Requests == 0 {
			t.Errorf("replica %d row empty: %+v", rep.Index, rep)
		}
	}
	// Every sojourn carries the synthetic round trip.
	if res.Sojourn.Min < 2*200*time.Microsecond {
		t.Errorf("min sojourn %v below the synthetic RTT", res.Sojourn.Min)
	}
}

// TestNetworkedPipelineEdgeFullReport exercises a networked edge through the
// public pipeline API: the shard tier sits behind NetServers while the front
// end stays in-process, and the result carries the full per-tier reporting
// surface with the edge's transport named.
func TestNetworkedPipelineEdgeFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("live networked run")
	}
	res, err := RunPipeline(PipelineSpec{
		Mode: ModeIntegrated,
		Tiers: []TierSpec{
			{Cluster: ClusterSpec{App: "masstree", Policy: "leastq", Replicas: 1, Scale: 0.05}},
			{
				Cluster: ClusterSpec{App: "masstree", Policy: "jsq2", Replicas: 3, Scale: 0.05},
				FanOut:  3,
				Edge:    &EdgeSpec{Mode: ModeNetworked, NetworkDelay: 300 * time.Microsecond},
			},
		},
		QPS:      700,
		Requests: 400,
		Warmup:   50,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 400 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 400/0", res.Requests, res.Errors)
	}
	if got := res.Tiers[0].Transport; got != "inprocess" {
		t.Errorf("front edge transport = %q, want inprocess", got)
	}
	if got := res.Tiers[1].Transport; got != "networked" {
		t.Errorf("shard edge transport = %q, want networked", got)
	}
	if res.Tiers[1].NetworkDelay != 300*time.Microsecond {
		t.Errorf("shard edge delay = %v, want 300µs", res.Tiers[1].NetworkDelay)
	}
	for ti, tier := range res.Tiers {
		if len(tier.PerReplica) == 0 {
			t.Errorf("tier %d has no per-replica rows", ti)
		}
		if tier.Requests == 0 {
			t.Errorf("tier %d recorded no sub-requests", ti)
		}
	}
	// The networked hop's RTT reaches the end-to-end critical path.
	if res.Sojourn.Min < 2*300*time.Microsecond {
		t.Errorf("min end-to-end sojourn %v lost the networked hop's RTT", res.Sojourn.Min)
	}
}
