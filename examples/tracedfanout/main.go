// Tracedfanout: attribute a fan-out tail with request-level tracing, and
// export the slowest span trees for visual inspection.
//
// The study runs the canonical partitioned-search topology — a light
// front-end fanning each query out to 16 exponential-tailed shards — in the
// virtual-time engine with tracing on, then asks the question summaries
// cannot answer: *what were the slowest requests made of?* The tail
// attribution decomposes each retained p99 tree into queueing, service,
// network, hedge wait, and the max-of-k straggler penalty; at k=16 the
// straggler component dominates — the "tail at scale" effect shown as a
// cause, not inferred from a quantile.
//
// The run asserts its claims and exits non-zero if they drift (the input is
// a fixed-seed simulation, so they are bit-stable):
//
//  1. every retained root's attribution components sum exactly to its
//     measured sojourn (the decomposition reconciles, within 1%);
//  2. the straggler component dominates the retained tails at k=16;
//  3. the trace export is byte-reproducible: the same seed yields the same
//     Chrome trace-event JSON.
//
// With -trace, the slowest span trees are written as Chrome trace-event
// JSON — load the file at ui.perfetto.dev to walk a slow request's critical
// path visually. CI runs this and uploads the file as the BENCH_trace.json
// artifact. With -json, the attribution report itself is written as well.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"time"

	"tailbench"
)

// shardServiceModel builds a deterministic exponential-tailed shard
// service-time distribution (fixed generator seed: the assertions demand a
// bit-reproducible input).
func shardServiceModel(n int, mean time.Duration, seed int64) []time.Duration {
	r := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(-float64(mean) * math.Log(1-r.Float64()))
	}
	return out
}

func main() {
	var (
		requests = flag.Int("requests", 10000, "measured root requests")
		fanout   = flag.Int("fanout", 16, "fan-out degree k")
		seed     = flag.Int64("seed", 3, "random seed")
		traceOut = flag.String("trace", "", "write the slowest span trees as Chrome trace-event JSON to this file")
		jsonOut  = flag.String("json", "", "write the tail-attribution report to this file (\"-\" for stdout)")
	)
	flag.Parse()

	samples := shardServiceModel(500, time.Millisecond, 7)
	front := make([]time.Duration, len(samples))
	for i, s := range samples {
		front[i] = s / 4
	}
	spec := tailbench.PipelineSpec{
		Mode: tailbench.ModeSimulated,
		Tiers: []tailbench.TierSpec{
			{Name: "frontend", Cluster: tailbench.ClusterSpec{App: "xapian", Replicas: 2, ServiceSamples: front}},
			{Name: "shards", Cluster: tailbench.ClusterSpec{App: "xapian", Replicas: *fanout, ServiceSamples: samples},
				FanOut: *fanout},
		},
		QPS: 150, Requests: *requests, Warmup: *requests / 10, Seed: *seed,
		Trace: &tailbench.TraceSpec{TopK: 16},
	}
	res, err := tailbench.RunPipeline(spec)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Trace

	fmt.Printf("fan-out %d over %d shards: p99 %v end-to-end, shard p99 %v per sub-request\n",
		*fanout, *fanout, res.Sojourn.P99.Round(time.Microsecond), res.Tiers[1].Sojourn.P99.Round(time.Microsecond))
	fmt.Println()
	tailbench.WriteTraceAttribution(os.Stdout, rep)

	// Claim 1: the decomposition reconciles — every retained root's
	// components sum to its measured sojourn (exact by construction; the 1%
	// gate is the acceptance bound).
	for _, rt := range rep.Slowest {
		diff := math.Abs(float64(rt.Attr.Total() - rt.Sojourn))
		if diff > 0.01*float64(rt.Sojourn) {
			log.Fatalf("CLAIM FAILED: root at +%v attributes %v of a %v sojourn", rt.At, rt.Attr.Total(), rt.Sojourn)
		}
	}
	fmt.Printf("\nclaim 1 holds: all %d retained attributions reconcile with their sojourns\n", len(rep.Slowest))

	// Claim 2: at k=16 the max-of-k straggler wait dominates the tail.
	a := rep.Attr
	if *fanout >= 16 {
		if a.Straggler <= a.Queue || a.Straggler <= a.Service || a.Straggler <= a.Net || a.Straggler <= a.Hedge {
			log.Fatalf("CLAIM FAILED: straggler %v not dominant (queue=%v service=%v net=%v hedge=%v)",
				a.Straggler, a.Queue, a.Service, a.Net, a.Hedge)
		}
		fmt.Printf("claim 2 holds: straggler wait is the dominant tail component (%.0f%%)\n",
			100*float64(a.Straggler)/float64(a.Total()))
	}

	// Claim 3: the export is byte-reproducible at the fixed seed.
	var first bytes.Buffer
	if err := tailbench.WriteChromeTrace(&first, rep.Slowest); err != nil {
		log.Fatal(err)
	}
	res2, err := tailbench.RunPipeline(spec)
	if err != nil {
		log.Fatal(err)
	}
	var second bytes.Buffer
	if err := tailbench.WriteChromeTrace(&second, res2.Trace.Slowest); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		log.Fatal("CLAIM FAILED: trace export is not byte-reproducible at a fixed seed")
	}
	fmt.Printf("claim 3 holds: trace export is byte-reproducible (%d bytes)\n", first.Len())

	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, first.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s — load it at ui.perfetto.dev\n", *traceOut)
	}
	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	}
}
