// Configcompare: reproduce the Sec. VI validation question for one
// short-request application — how much does the measured tail latency depend
// on the harness configuration (networked vs loopback vs integrated vs
// simulated)? Short-request applications such as specjbb are exactly where
// the configurations diverge, because network-stack overheads are comparable
// to the request service time.
package main

import (
	"fmt"
	"log"
	"time"

	"tailbench"
	"tailbench/sweep"
)

func main() {
	opts := sweep.Options{
		Scale:               0.5,
		Requests:            500,
		Warmup:              100,
		CalibrationRequests: 200,
		Loads:               []float64{0.3, 0.6},
		Seed:                1,
	}
	curves, err := sweep.ConfigComparison("specjbb", 1, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("specjbb p95 sojourn latency by harness configuration:")
	fmt.Println("mode         load   p95")
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Printf("%-11s  %.0f%%   %v\n", c.Mode, p.Load*100, p.P95.Round(time.Microsecond))
		}
	}

	fmt.Println("\nInterpretation (mirrors Fig. 5): for short requests the networked and")
	fmt.Println("loopback configurations report higher latency and saturate earlier than")
	fmt.Println("the integrated configuration, because protocol-stack time is a large")
	fmt.Println("fraction of the request; for millisecond-scale applications the three")
	fmt.Println("configurations agree closely.")
	_ = tailbench.ModeIntegrated
}
