// Diurnal: drive time-varying load shapes through a replicated cluster and
// watch each balancer policy ride them, using the windowed latency
// accounting that makes time-varying load measurable in the first place —
// whole-run percentiles average a spike's tail excursion away, while the
// per-window series shows exactly when and how far the tail departed.
//
// Two scenarios on a 4-replica xapian (online search) cluster (simulated in
// virtual time from one calibration, so the whole comparison takes seconds
// and is exactly reproducible at the fixed seed):
//
//  1. A 3x load spike: base load at 30% of cluster capacity, spiking to
//     ~90% for a third of the run. Constant-rate provisioning hides this
//     case — the run's average load is well under capacity — but the spike
//     windows show random routing's p99 blowing up (at 90% load a randomly
//     routed replica is often pushed past saturation) while the queue-aware
//     policies (leastq, jsq2) absorb the same excursion with a far lower
//     peak.
//  2. A diurnal cycle: a compressed day/night sine swinging between 10% and
//     70% of capacity, where the windowed series traces the tail following
//     the load crest.
//
// The shapes' time base is derived from the application's measured capacity
// so the fixed request budget covers the whole profile: with xapian's
// ~200µs queries the horizon lands around a second of virtual time. The
// same shapes at any other timescale work unchanged — only the durations
// differ.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"tailbench"
	"tailbench/sweep"
)

const (
	app      = "xapian"
	replicas = 4
	requests = 14000
	warmup   = 1000
	scale    = 0.1
	seed     = 1
)

func main() {
	opts := sweep.Options{
		Scale:    scale,
		Requests: requests,
		Warmup:   warmup,
		Seed:     seed,
	}
	// Calibrate once so both scenarios share the same capacity estimate.
	cal, err := sweep.Calibrate(app, opts)
	if err != nil {
		log.Fatal(err)
	}
	capacity := math.Round(cal.SaturationQPS) * replicas
	// Horizon that the request budget covers at the scenarios' ~50% mean
	// load; the shapes live inside it.
	horizon := time.Duration(float64(requests+warmup) / (0.5 * capacity) * float64(time.Second))
	window := (horizon / 16).Round(10 * time.Microsecond)
	fmt.Printf("%s: %d-replica cluster, nominal capacity ~%.0f QPS\n", app, replicas, capacity)
	fmt.Printf("time base: %v horizon, %v windows (virtual time)\n\n", horizon.Round(10*time.Microsecond), window)

	policies := []string{"random", "leastq", "jsq2"}

	spike := tailbench.Spike(math.Round(0.3*capacity), math.Round(0.9*capacity), horizon/3, horizon/3)
	fmt.Printf("=== 3x spike (%s) ===\n", spike.Spec())
	fmt.Println("mean load is only ~50% of capacity — a constant-rate run at the")
	fmt.Println("same average would show nothing; the spike windows tell the story:")
	runScenario(policies, spike, window, cal, opts)

	diurnal := tailbench.Diurnal(math.Round(0.4*capacity), math.Round(0.3*capacity), horizon/2)
	fmt.Printf("=== diurnal cycle (%s) ===\n", diurnal.Spec())
	runScenario(policies, diurnal, window, cal, opts)
}

func runScenario(policies []string, shape tailbench.LoadShape, window time.Duration, cal *sweep.Calibration, opts sweep.Options) {
	// Reuse the calibration the shape was sized from: the application is
	// measured exactly once for the whole study.
	series, err := sweep.ShapeComparison(app, tailbench.ModeSimulated, replicas, 1,
		policies, shape, window, cal, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("%-10s %-14s %-14s %s\n", "policy", "overall_p99", "peak_win_p99", "peak/overall")
	for _, s := range series {
		ratio := 0.0
		if s.OverallP99 > 0 {
			ratio = float64(s.PeakP99) / float64(s.OverallP99)
		}
		fmt.Printf("%-10s %-14v %-14v %.1fx\n", s.Policy,
			s.OverallP99.Round(time.Microsecond), s.PeakP99.Round(time.Microsecond), ratio)
	}
	for _, s := range series {
		fmt.Printf("\n%s, window by window:\n", s.Policy)
		tailbench.WriteWindowTable(os.Stdout, s.Windows)
	}
	fmt.Println()
}
