// Quickstart: measure the tail latency of the masstree key-value store under
// the integrated harness configuration at a moderate load, the simplest
// possible use of the TailBench API.
package main

import (
	"fmt"
	"log"
	"time"

	"tailbench"
)

func main() {
	// Measure uncontended service times first to pick a sensible load.
	services, err := tailbench.MeasureServiceTimes("masstree", 0.1, 1, 300)
	if err != nil {
		log.Fatal(err)
	}
	saturation := tailbench.SaturationQPS(services, 1)
	fmt.Printf("masstree single-thread saturation estimate: %.0f QPS\n", saturation)

	// Run at 50% of saturation with the open-loop integrated harness.
	res, err := tailbench.Run(tailbench.RunSpec{
		App:      "masstree",
		Mode:     tailbench.ModeIntegrated,
		QPS:      0.5 * saturation,
		Threads:  1,
		Requests: 2000,
		Scale:    0.1,
		Seed:     1,
		Validate: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered %.0f QPS, achieved %.0f QPS over %d requests (%d errors)\n",
		res.OfferedQPS, res.AchievedQPS, res.Requests, res.Errors)
	fmt.Printf("sojourn latency: mean=%v p95=%v p99=%v\n",
		res.Sojourn.Mean.Round(time.Microsecond),
		res.Sojourn.P95.Round(time.Microsecond),
		res.Sojourn.P99.Round(time.Microsecond))
	fmt.Printf("queuing delay:   mean=%v (service mean=%v)\n",
		res.Queue.Mean.Round(time.Microsecond), res.Service.Mean.Round(time.Microsecond))
}
