// Autoscale: ride a flash-crowd spike with an elastic replica set and
// compare provisioning strategies on the two axes that matter for a
// latency-critical service — the worst windowed p99 (did we hold the SLO
// through the spike?) and replica-seconds (what did the capacity cost?).
//
// Four ways to run the same 4-replica-class xapian (online search) workload
// under a spike from ~50% to ~270% of one replica's capacity:
//
//   - static-base: provisioned for the base load (1 replica). Cheapest, and
//     the spike destroys its tail — the under-provisioning mistake.
//   - static-peak: provisioned for the crest (4 replicas, ~35% headroom at
//     peak). The tail is flat, but most of the fleet idles outside the
//     spike — the over-provisioning mistake.
//   - threshold: starts at 1 replica; a queue-depth hysteresis controller
//     grows the set as the spike hits and drains it afterwards.
//   - target-p95: starts at 1 replica; a controller stepping on the
//     per-tick windowed p95 against an SLO.
//
// Everything runs in deterministic virtual time from one calibration, so
// the whole study takes seconds and reproduces exactly at the fixed seed.
// The figure of merit: the threshold controller's peak windowed p99 lands
// near static-peak's at a fraction of its replica-seconds (the same
// contrast asserted by TestAutoscaleSpikeAcceptance on synthetic service
// times).
//
// With -json, a machine-readable summary of every case is written as well;
// CI runs this in short mode and uploads it as the BENCH_autoscale.json
// artifact to track the elasticity trade-off over time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"tailbench"
	"tailbench/sweep"
)

const app = "xapian"

// caseSummary is the machine-readable record of one case, written by -json.
type caseSummary struct {
	Name           string
	Replicas       int
	PeakReplicas   int
	PeakP99        time.Duration
	OverallP99     time.Duration
	ReplicaSeconds float64
	ScalingEvents  int
}

func main() {
	var (
		requests = flag.Int("requests", 14000, "measured requests")
		scale    = flag.Float64("scale", 0.1, "application dataset scale")
		seed     = flag.Int64("seed", 1, "random seed")
		jsonOut  = flag.String("json", "", "write a machine-readable study summary to this file (\"-\" for stdout)")
	)
	flag.Parse()

	opts := sweep.Options{
		Scale:    *scale,
		Requests: *requests,
		Warmup:   *requests / 10,
		Seed:     *seed,
	}
	cal, err := sweep.Calibrate(app, opts)
	if err != nil {
		log.Fatal(err)
	}
	sat := math.Round(cal.SaturationQPS)
	// Time base sized so the request budget covers the whole profile at the
	// spike's ~1.1x-of-one-replica mean load.
	horizon := time.Duration(float64(*requests+opts.Warmup) / (1.1 * sat) * float64(time.Second))
	window := (horizon / 12).Round(10 * time.Microsecond)
	shape := tailbench.Spike(math.Round(0.5*sat), math.Round(2.7*sat), horizon/3, horizon/3)
	fmt.Printf("%s: one replica saturates at ~%.0f QPS; spike %s\n", app, sat, shape.Spec())
	fmt.Printf("time base: %v horizon, %v windows (virtual time)\n\n", horizon.Round(10*time.Microsecond), window)

	interval := horizon / 200
	cases := []sweep.ControllerCase{
		{Name: "static-base", Replicas: 1},
		{Name: "static-peak", Replicas: 4},
		{Name: "threshold", Replicas: 1, Autoscale: &tailbench.AutoscaleSpec{
			Policy: "threshold", MinReplicas: 1, MaxReplicas: 4,
			Interval: interval, HighDepth: 1.5, LowDepth: 0.4,
		}},
		{Name: "target-p95", Replicas: 1, Autoscale: &tailbench.AutoscaleSpec{
			Policy: "target-p95", MinReplicas: 1, MaxReplicas: 4,
			Interval: interval, TargetP95: 8 * cal.Service.P95,
		}},
	}
	series, err := sweep.ControllerComparison(app, tailbench.ModeSimulated, "leastq",
		cases, shape, window, cal, opts)
	if err != nil {
		log.Fatal(err)
	}

	var peakProv *sweep.ControllerSeries
	for _, s := range series {
		if s.Case.Name == "static-peak" {
			peakProv = s
		}
	}
	fmt.Printf("%-12s %-14s %-14s %-10s %-16s %s\n",
		"case", "peak_win_p99", "vs static-peak", "peak_repl", "replica_seconds", "cost vs static-peak")
	summaries := make([]caseSummary, 0, len(series))
	for _, s := range series {
		p99Ratio := float64(s.PeakP99) / float64(peakProv.PeakP99)
		costRatio := s.ReplicaSeconds / peakProv.ReplicaSeconds
		fmt.Printf("%-12s %-14v %-14s %-10d %-16.1f %.0f%%\n",
			s.Case.Name, s.PeakP99.Round(time.Microsecond), fmt.Sprintf("%.2fx", p99Ratio),
			s.PeakReplicas, s.ReplicaSeconds, 100*costRatio)
		summaries = append(summaries, caseSummary{
			Name:           s.Case.Name,
			Replicas:       s.Case.Replicas,
			PeakReplicas:   s.PeakReplicas,
			PeakP99:        s.PeakP99,
			OverallP99:     s.OverallP99,
			ReplicaSeconds: s.ReplicaSeconds,
			ScalingEvents:  s.ScalingEvents,
		})
	}

	for _, s := range series {
		if s.Case.Autoscale == nil {
			continue
		}
		fmt.Printf("\n%s, window by window (repl is the mean provisioned replica count):\n", s.Case.Name)
		tailbench.WriteWindowTable(os.Stdout, s.Windows)
	}

	if *jsonOut != "" {
		payload := struct {
			App       string
			ShapeSpec string
			Seed      int64
			Requests  int
			Cases     []caseSummary
		}{App: app, ShapeSpec: shape.Spec(), Seed: *seed, Requests: *requests, Cases: summaries}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
