// Clustersweep: compare load-balancing policies on a replicated cluster.
// Two scenarios, both measured with the suite's open-loop methodology:
//
//  1. A uniform 4-replica masstree cluster at high load — queue-aware
//     policies (leastq, jsq2) keep the p99 well below random routing,
//     because a single unlucky queue no longer dominates the tail.
//  2. The same cluster with one replica slowed 3x (a straggler, e.g. a
//     hot shard or a throttled machine) — random routing keeps feeding
//     the slow replica a full quarter of the traffic and the tail
//     explodes, while queue-aware policies route around it.
//
// Both scenarios use the simulated cluster path (service times calibrated
// once from the real application, then replayed in virtual time), so the
// whole comparison takes a few seconds and is reproducible.
package main

import (
	"fmt"
	"log"
	"time"

	"tailbench"
)

const (
	replicas = 4
	requests = 4000
	warmup   = 400
	scale    = 0.1
	seed     = 1
)

func main() {
	// Calibrate once: measured service times set the cluster's nominal
	// capacity (replicas / mean service time) and feed the simulation.
	samples, err := tailbench.MeasureServiceTimes("masstree", scale, seed, 400)
	if err != nil {
		log.Fatal(err)
	}
	satQPS := tailbench.SaturationQPS(samples, 1)
	fmt.Printf("masstree: single-replica saturation ~%.0f QPS; cluster of %d replicas\n\n", satQPS, replicas)

	run := func(policy string, load float64, slowdowns []float64) *tailbench.ClusterResult {
		res, err := tailbench.RunCluster(tailbench.ClusterSpec{
			App:            "masstree",
			Mode:           tailbench.ModeSimulated,
			Policy:         policy,
			Replicas:       replicas,
			Threads:        1,
			QPS:            load * satQPS * replicas,
			Requests:       requests,
			Warmup:         warmup,
			Scale:          scale,
			Seed:           seed,
			Slowdowns:      slowdowns,
			ServiceSamples: samples,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	scenario := func(title string, load float64, slowdowns []float64) {
		fmt.Printf("%s (offered load %.0f%% of nominal capacity)\n", title, load*100)
		fmt.Printf("%-12s %-12s %-12s %-12s %s\n", "policy", "p95", "p99", "mean", "straggler_share")
		var randomP99, bestQueueAwareP99 time.Duration
		for _, policy := range tailbench.BalancerPolicies() {
			res := run(policy, load, slowdowns)
			share := float64(res.PerReplica[0].Dispatched) / float64(requests+warmup)
			fmt.Printf("%-12s %-12v %-12v %-12v %.0f%%\n", policy,
				res.Sojourn.P95.Round(time.Microsecond), res.Sojourn.P99.Round(time.Microsecond),
				res.Sojourn.Mean.Round(time.Microsecond), share*100)
			switch policy {
			case "random":
				randomP99 = res.Sojourn.P99
			case "leastq", "jsq2":
				if bestQueueAwareP99 == 0 || res.Sojourn.P99 < bestQueueAwareP99 {
					bestQueueAwareP99 = res.Sojourn.P99
				}
			}
		}
		if bestQueueAwareP99 > 0 && randomP99 > bestQueueAwareP99 {
			fmt.Printf("→ queue-aware balancing cuts the p99 %.1fx below random routing\n\n",
				float64(randomP99)/float64(bestQueueAwareP99))
		} else {
			fmt.Println("→ no p99 advantage at this load")
			fmt.Println()
		}
	}

	scenario("uniform cluster, high load", 0.85, nil)
	scenario("straggler: replica 0 slowed 3x", 0.6, []float64{3, 1, 1, 1})
}
