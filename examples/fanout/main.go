// Fanout: measure the "tail at scale" amplification of a fan-out topology
// and how much of it request hedging buys back, on the two knobs that
// matter for a partitioned service — the fan-out degree k and the hedging
// delay budget.
//
// The topology is the canonical partitioned search service: a lightweight
// front-end (an aggregator ~4x cheaper than a leaf) that fans each query
// out to k index shards — a k-replica xapian-class cluster — and waits for
// all k answers. Shard replicas scale with k, so every point offers the
// same per-replica shard load; what grows with k is only the number of
// stragglers a query must wait out. Because a root's end-to-end latency
// inherits the MAX of k shard sojourns, the p99 climbs with k even though
// every shard's own latency distribution is unchanged — the amplification
// effect of Dean & Barroso's "The Tail at Scale".
//
// Each point then reruns with the shard edge hedged at that point's p95
// sub-request sojourn ("duplicate any shard request slower than 95% of its
// peers; first response wins"). With a rare slow-query mode — ~1% of
// queries are 5-30x slower, the shape real search services exhibit — the
// p95 budget sits just past the fast mode, so a hedge fires almost exactly
// when the original drew a slow query, and the duplicate almost certainly
// redraws a fast one: at k=16 the hedge cuts the end-to-end p99 severalfold
// while duplicating only ~6% of shard traffic.
//
// The shard service-time distribution is a deterministic xapian-like model
// (99% fast index probes at 60-160us, 1% slow queries at 0.6-3ms, fixed
// generator seed) rather than a live calibration: wall-clock calibration
// varies run to run with machine noise, and this study's claims are pinned
// by assertions — the run exits non-zero if they drift — which demands a
// bit-reproducible input. Swap in sweep.Calibrate to run the same study
// against your machine's measured distribution. The same assertions are
// pinned by the root test TestFanoutStudyAcceptance.
//
// With -json, a machine-readable summary is written as well; CI runs this
// in short mode and uploads it as the BENCH_fanout.json artifact to track
// the amplification and hedging trade-off over time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"tailbench"
	"tailbench/sweep"
)

const app = "xapian"

// shardServiceModel builds the deterministic xapian-like bimodal
// service-time distribution: mostly fast index probes plus a rare
// slow-query mode.
func shardServiceModel(n int, seed int64) []time.Duration {
	r := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		if r.Float64() < 0.01 {
			out[i] = 600*time.Microsecond + time.Duration(r.Int63n(int64(2400*time.Microsecond)))
		} else {
			out[i] = 60*time.Microsecond + time.Duration(r.Int63n(int64(100*time.Microsecond)))
		}
	}
	return out
}

func main() {
	var (
		requests = flag.Int("requests", 10000, "measured root requests per point")
		seed     = flag.Int64("seed", 1, "random seed")
		loadFrac = flag.Float64("load", 0.2, "root rate as a fraction of one shard replica's saturation throughput")
		jsonOut  = flag.String("json", "", "write a machine-readable study summary to this file (\"-\" for stdout)")
	)
	flag.Parse()

	samples := shardServiceModel(600, 17)
	cal := &sweep.Calibration{
		App:            app,
		ServiceSamples: samples,
		SaturationQPS:  tailbench.SaturationQPS(samples, 1),
	}
	opts := sweep.Options{
		Scale:    0.05,
		Requests: *requests,
		Warmup:   *requests / 10,
		Seed:     *seed,
	}
	qps := *loadFrac * cal.SaturationQPS
	fmt.Printf("%s-class shard: saturates at ~%.0f QPS; root rate %.0f QPS (%.0f%%)\n",
		app, cal.SaturationQPS, qps, 100**loadFrac)
	fmt.Printf("topology: 2-replica front-end (4x lighter) -> k shards (k replicas), hedge at each point's shard p95\n\n")

	points, err := sweep.FanoutStudy(sweep.FanoutStudySpec{
		App:          app,
		Mode:         tailbench.ModeSimulated,
		Policy:       "leastq",
		Fanouts:      []int{1, 4, 16},
		QPS:          qps,
		Hedge:        &tailbench.HedgeSpec{}, // auto: each point's shard p95
		Window:       -1,
		FrontSpeedup: 4,
	}, cal, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-5s %-12s %-8s %-12s %-12s %-10s %-12s %s\n",
		"k", "p99", "amp", "hedge_at", "hedged_p99", "cut", "hedges", "hedge_wins")
	for _, p := range points {
		fmt.Printf("%-5d %-12v %-8.2f %-12v %-12v %-10.1f %-12d %d\n",
			p.K, p.P99.Round(time.Microsecond), p.Amplification,
			p.HedgeDelay.Round(time.Microsecond), p.HedgedP99.Round(time.Microsecond),
			100*p.HedgeCut, p.HedgesIssued, p.HedgeWins)
	}

	// The study's headline claims, asserted at the fixed seed: (a) the
	// end-to-end p99 amplifies monotonically with the fan-out degree, and
	// (b) hedging at the p95 budget cuts the k=16 p99 by at least 20%.
	for i := 1; i < len(points); i++ {
		if points[i].P99 <= points[i-1].P99 {
			log.Fatalf("FAIL: p99 did not amplify monotonically: k=%d p99=%v <= k=%d p99=%v",
				points[i].K, points[i].P99, points[i-1].K, points[i-1].P99)
		}
	}
	last := points[len(points)-1]
	if last.HedgeCut < 0.20 {
		log.Fatalf("FAIL: hedging cut the k=%d p99 by only %.1f%%, want >= 20%%", last.K, 100*last.HedgeCut)
	}
	fmt.Printf("\nPASS: p99 amplifies %.2fx from k=1 to k=%d; hedging at p95 cuts it by %.1f%%\n",
		last.Amplification, last.K, 100*last.HedgeCut)

	if *jsonOut != "" {
		payload := struct {
			App      string
			QPS      float64
			Seed     int64
			Requests int
			Points   []*sweep.FanoutPoint
		}{App: app, QPS: qps, Seed: *seed, Requests: *requests, Points: points}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
