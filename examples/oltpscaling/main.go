// Oltpscaling: reproduce the spirit of the paper's case study (Sec. VII) for
// the silo in-memory OLTP engine — compare how tail latency scales from one
// to four worker threads against the M/G/k queueing-model prediction, and
// show how an idealized memory system changes (or fails to change) the
// picture, separating synchronization overheads from memory contention.
package main

import (
	"fmt"
	"log"

	"tailbench"
	"tailbench/sweep"
)

func main() {
	opts := sweep.Quick()
	opts.Requests = 3000
	opts.Loads = []float64{0.2, 0.5, 0.8}

	// Real measurements: 1 vs 4 threads on the actual engine.
	fmt.Println("silo, measured on the real engine (integrated harness):")
	curves, err := sweep.ThreadScaling("silo", []int{1, 4}, sweep.Options{
		Scale: 1, Requests: 800, Warmup: 100, CalibrationRequests: 200,
		Loads: opts.Loads, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	printCurves(curves)

	// Case study: queueing-model prediction vs idealized-memory simulation.
	cs, err := sweep.CaseStudy("silo", opts)
	if err != nil {
		log.Fatal(err)
	}
	base := float64(cs.BaselineP95)
	fmt.Println("\nsilo, simulated (normalized p95; M/G/n = no threading overheads):")
	fmt.Println("series          load   normalized p95")
	for name, c := range map[string]*sweep.LoadCurve{
		"M/G/1        ": cs.MG1, "M/G/4        ": cs.MG4,
		"ideal-mem 1th": cs.Ideal1, "ideal-mem 4th": cs.Ideal4,
	} {
		for _, p := range c.Points {
			fmt.Printf("%s  %.0f%%   %.2f\n", name, p.Load*100, float64(p.P95)/base)
		}
	}
	fmt.Println("\nIf the ideal-memory 4-thread curve stays far above M/G/4, the lost")
	fmt.Println("scaling is synchronization, not the memory system — the paper's")
	fmt.Println("conclusion for silo.")
}

func printCurves(curves []*sweep.LoadCurve) {
	fmt.Println("threads  load   qps/thread   p95")
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Printf("%d        %.0f%%   %8.0f   %v\n", c.Threads, p.Load*100, p.QPS/float64(c.Threads), p.P95)
		}
	}
	_ = tailbench.ModeIntegrated // the curves above use the integrated harness
}
