// Netcluster: do balancer policies still matter once the network is in the
// loop? The cluster harness's integrated mode dispatches to replicas by
// direct function call, so its policy comparisons see perfect, instantaneous
// queue signals. This study reruns the classic straggler scenario — four
// xapian (online search) replicas, one of them 10x slow — over the
// networked transport — every replica behind its own NetServer, the balancer
// client-side in the dispatcher, each hop paying the TCP stack plus a
// synthetic NIC/switch delay, and the queue-depth signal now the stale
// client-side estimate built from response headers instead of the exact
// in-process counter. (The 10x factor keeps the study's load regime safe on
// one-core CI machines; see the regime comment below.)
//
// Two things are measured at a fixed seed, and asserted so CI gates on them:
//
//   - The ranking survives: queue-aware policies (leastq, jsq2) still beat
//     random at the tail under networked dispatch. Random keeps feeding the
//     straggler its full share and its queue destroys p99; queue-aware
//     policies route around it even with a stale signal.
//   - The gap narrows: the network charges every policy the same stack and
//     propagation floor and degrades the signal the smart policies steer
//     by, so the random-to-jsq2 p99 ratio shrinks from integrated to
//     networked. Policy choice buys less once the wire is in the loop —
//     which is exactly why the paper's harness configurations exist.
//
// With -json, a machine-readable summary is written; CI runs this in short
// mode and uploads it as the BENCH_netcluster.json artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"tailbench"
)

const app = "xapian"

// runSummary is the machine-readable record of one (mode, policy) run.
type runSummary struct {
	Mode        string
	Policy      string
	OfferedQPS  float64
	AchievedQPS float64
	P95         time.Duration
	P99         time.Duration
	// StragglerShare is the fraction of dispatches the slowed replica
	// received — the routing decision the policies differ on.
	StragglerShare float64
}

func main() {
	var (
		requests = flag.Int("requests", 12000, "measured requests per run")
		scale    = flag.Float64("scale", 0.1, "application dataset scale")
		seed     = flag.Int64("seed", 1, "random seed")
		attempts = flag.Int("attempts", 2, "runs per (mode, policy) leg; the best tail of the attempts is scored")
		netDelay = flag.Duration("net-delay", 25*time.Microsecond, "one-way synthetic NIC/switch delay")
		jsonOut  = flag.String("json", "", "write a machine-readable study summary to this file (\"-\" for stdout)")
	)
	flag.Parse()

	// The regime is chosen to work on small CI machines (even a single
	// core): total offered load is half of ONE replica's nominal
	// saturation, so the cluster — and the machine, TCP stack included —
	// has ample headroom on any core count. But the 10x straggler's
	// capacity is only 10% of nominal, so the quarter share random routing
	// keeps sending it (0.5/4 = 12.5% of nominal) overloads exactly that
	// replica. Queue-aware policies see the backlog and route around it;
	// random's p99 drowns in the straggler's queue.
	const (
		replicas  = 4
		slowdown  = 10.0
		loadLevel = 0.50 // of ONE nominal replica's saturation
	)

	serviceTimes, err := tailbench.MeasureServiceTimes(app, *scale, *seed, 300)
	if err != nil {
		log.Fatal(err)
	}
	sat := tailbench.SaturationQPS(serviceTimes, 1)
	qps := math.Round(loadLevel * sat)
	fmt.Printf("%s: one replica saturates at ~%.0f QPS; offering %.0f QPS to %d replicas, replica 0 slowed %.1fx\n",
		app, sat, qps, replicas, slowdown)
	fmt.Printf("networked hops pay the TCP stack plus a %v one-way synthetic delay\n\n", *netDelay)

	modes := []tailbench.Mode{tailbench.ModeIntegrated, tailbench.ModeNetworked}
	policies := []string{"random", "leastq", "jsq2"}

	p99 := map[tailbench.Mode]map[string]time.Duration{}
	var summaries []runSummary
	fmt.Printf("%-12s %-10s %-12s %-12s %-12s %s\n", "mode", "policy", "p95", "p99", "achieved", "straggler_share")
	for _, mode := range modes {
		p99[mode] = map[string]time.Duration{}
		for _, policy := range policies {
			// Live wall-clock measurement on a shared CI machine: a noisy
			// neighbor or GC burst can only ever inflate a tail, so each leg
			// runs a few attempts and scores the best one. The structural
			// signal — random's overloaded straggler queue — survives the
			// min; contention accidents do not.
			var best *tailbench.ClusterResult
			for a := 0; a < max(*attempts, 1); a++ {
				res, err := tailbench.RunCluster(tailbench.ClusterSpec{
					App:          app,
					Mode:         mode,
					Policy:       policy,
					Replicas:     replicas,
					QPS:          qps,
					Requests:     *requests,
					Scale:        *scale,
					Seed:         *seed + int64(a),
					Slowdowns:    []float64{slowdown, 1, 1, 1},
					Threads:      1,
					NetworkDelay: *netDelay,
				})
				if err != nil {
					log.Fatal(err)
				}
				if best == nil || res.Sojourn.P99 < best.Sojourn.P99 {
					best = res
				}
			}
			var total uint64
			for _, rep := range best.PerReplica {
				total += rep.Dispatched
			}
			share := float64(best.PerReplica[0].Dispatched) / float64(total)
			p99[mode][policy] = best.Sojourn.P99
			summaries = append(summaries, runSummary{
				Mode:           mode.String(),
				Policy:         policy,
				OfferedQPS:     best.OfferedQPS,
				AchievedQPS:    best.AchievedQPS,
				P95:            best.Sojourn.P95,
				P99:            best.Sojourn.P99,
				StragglerShare: share,
			})
			fmt.Printf("%-12s %-10s %-12v %-12v %-12.0f %.1f%%\n",
				mode, policy, best.Sojourn.P95.Round(time.Microsecond), best.Sojourn.P99.Round(time.Microsecond),
				best.AchievedQPS, 100*share)
		}
	}

	ratio := func(mode tailbench.Mode) float64 {
		return float64(p99[mode]["random"]) / float64(p99[mode]["jsq2"])
	}
	intRatio, netRatio := ratio(tailbench.ModeIntegrated), ratio(tailbench.ModeNetworked)
	fmt.Printf("\nrandom-to-jsq2 p99 ratio: %.2fx integrated -> %.2fx networked\n", intRatio, netRatio)

	// The assertions CI gates on. The ranking must survive the network with
	// room to spare; the narrowing is asserted with a small tolerance since
	// both sides are live wall-clock measurements.
	failed := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			failed = true
			fmt.Printf("ASSERTION FAILED: "+format+"\n", args...)
		}
	}
	for _, policy := range []string{"leastq", "jsq2"} {
		check(p99[tailbench.ModeNetworked][policy] < p99[tailbench.ModeNetworked]["random"],
			"networked %s p99 %v not below random p99 %v (ranking did not survive the network)",
			policy, p99[tailbench.ModeNetworked][policy], p99[tailbench.ModeNetworked]["random"])
	}
	check(netRatio < intRatio*1.05,
		"networked random/jsq2 ratio %.2fx did not narrow from integrated %.2fx",
		netRatio, intRatio)
	if failed {
		os.Exit(1)
	}
	fmt.Println("ranking survives networked dispatch; the policy gap narrows once the wire is in the loop")

	if *jsonOut != "" {
		payload := struct {
			App             string
			Seed            int64
			Requests        int
			OfferedQPS      float64
			NetDelay        time.Duration
			IntegratedRatio float64
			NetworkedRatio  float64
			Runs            []runSummary
		}{App: app, Seed: *seed, Requests: *requests, OfferedQPS: qps, NetDelay: *netDelay,
			IntegratedRatio: intRatio, NetworkedRatio: netRatio, Runs: summaries}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
