// Searchsweep: characterize the xapian search engine the way Sec. V of the
// paper characterizes its applications — sweep the offered load and report
// how mean and tail latency diverge as the server approaches saturation,
// then locate the "knee" load beyond which p95 latency more than doubles.
package main

import (
	"fmt"
	"log"
	"time"

	"tailbench"
	"tailbench/sweep"
)

func main() {
	opts := sweep.Quick()
	opts.Scale = 0.1
	opts.Requests = 600
	opts.Loads = []float64{0.1, 0.3, 0.5, 0.7, 0.85}

	cal, err := sweep.Calibrate("xapian", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xapian: mean service %v, p95 service %v, saturation %.0f QPS\n",
		cal.Service.Mean.Round(time.Microsecond), cal.Service.P95.Round(time.Microsecond), cal.SaturationQPS)

	curve, err := sweep.LatencyVsLoad("xapian", tailbench.ModeIntegrated, 1, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nload   qps      mean       p95        p99")
	for _, p := range curve.Points {
		fmt.Printf("%.0f%%   %7.0f  %-9v  %-9v  %v\n", p.Load*100, p.QPS,
			p.Mean.Round(time.Microsecond), p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond))
	}

	// Locate the knee: the lowest load whose p95 exceeds twice the p95 at
	// the lightest load. Operators provision below this point.
	base := curve.Points[0].P95
	knee := -1.0
	for _, p := range curve.Points[1:] {
		if p.P95 > 2*base {
			knee = p.Load
			break
		}
	}
	if knee < 0 {
		fmt.Println("\nno knee below the highest measured load; the server still has headroom")
	} else {
		fmt.Printf("\ntail-latency knee: p95 more than doubles beyond ~%.0f%% load\n", knee*100)
	}
}
