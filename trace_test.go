package tailbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"tailbench/internal/trace"
)

// tracedSimCluster is the fixed-seed simulated cluster run the trace golden
// tests pin: windowed, queue-aware, synthetic service times.
func tracedSimCluster(t *testing.T) *ClusterResult {
	t.Helper()
	res, err := RunCluster(ClusterSpec{
		App: "masstree", Mode: ModeSimulated, Policy: "leastq", Replicas: 3, Threads: 2,
		QPS: 2500, Requests: 4000, Warmup: 400, Seed: 9,
		ServiceSamples: syntheticServiceSamples(300, 11),
		Trace:          &TraceSpec{TopK: 4, Window: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// tracedSimPipeline is the fixed-seed simulated fan-out + hedge pipeline the
// trace golden tests pin.
func tracedSimPipeline(t *testing.T, k int) *PipelineResult {
	t.Helper()
	samples := expServiceSamples(500, time.Millisecond, 7)
	spec := fanoutSpec(k, samples, &HedgeSpec{Delay: 6 * time.Millisecond}, 150)
	spec.Trace = &TraceSpec{TopK: 4}
	res, err := RunPipeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// byteHash fingerprints an export byte stream for golden pinning.
func byteHash(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// chromeBytes renders retained traces to Chrome trace-event JSON.
func chromeBytes(t *testing.T, traces []RequestTrace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, traces); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceSimGoldenChrome pins bit-reproducibility of simulated traces: the
// same seed must yield byte-identical Chrome trace-event JSON across runs,
// and the golden hashes below pin the exact span layout (IDs, parents,
// kinds, timestamps) against drift in event ordering or trace plumbing.
func TestTraceSimGoldenChrome(t *testing.T) {
	cluster1 := chromeBytes(t, tracedSimCluster(t).Trace.Slowest)
	cluster2 := chromeBytes(t, tracedSimCluster(t).Trace.Slowest)
	if !bytes.Equal(cluster1, cluster2) {
		t.Error("simulated cluster trace export is not byte-reproducible at a fixed seed")
	}
	pipe1 := chromeBytes(t, tracedSimPipeline(t, 8).Trace.Slowest)
	pipe2 := chromeBytes(t, tracedSimPipeline(t, 8).Trace.Slowest)
	if !bytes.Equal(pipe1, pipe2) {
		t.Error("simulated pipeline trace export is not byte-reproducible at a fixed seed")
	}
	// Golden hashes captured at introduction. A change here means the span
	// structure of simulated traces moved — rule out accidental drift in the
	// virtual-time event order or trace recording seams before re-pinning.
	if got, want := byteHash(cluster1), uint64(0xa29a35c89d15a891); got != want {
		t.Errorf("cluster trace hash = %#x, want %#x", got, want)
	}
	if got, want := byteHash(pipe1), uint64(0xb2683a2e88c0b3b5); got != want {
		t.Errorf("pipeline trace hash = %#x, want %#x", got, want)
	}
}

// TestTraceAttributionExact pins the decomposition invariant the report
// relies on: a retained root's components sum exactly to its sojourn, for
// every retained root of every window, on both engines' simulated paths.
func TestTraceAttributionExact(t *testing.T) {
	cres := tracedSimCluster(t)
	pres := tracedSimPipeline(t, 8)
	for name, rep := range map[string]*TraceReport{"cluster": cres.Trace, "pipeline": pres.Trace} {
		if rep == nil {
			t.Fatalf("%s: traced run returned no trace report", name)
		}
		if rep.Roots == 0 || len(rep.Slowest) == 0 {
			t.Fatalf("%s: empty trace report: %d roots, %d retained", name, rep.Roots, len(rep.Slowest))
		}
		checkAttr := func(rt RequestTrace) {
			if got := rt.Attr.Total(); got != rt.Sojourn {
				t.Errorf("%s: root at +%v: attribution total %v != sojourn %v (queue=%v service=%v net=%v hedge=%v straggler=%v)",
					name, rt.At, got, rt.Sojourn, rt.Attr.Queue, rt.Attr.Service, rt.Attr.Net, rt.Attr.Hedge, rt.Attr.Straggler)
			}
		}
		for _, rt := range rep.Slowest {
			checkAttr(rt)
		}
		// Windowed means are built from the same exact decompositions; each
		// window must have retained something and seen a positive tail.
		for _, win := range rep.Windows {
			if win.Retained == 0 || win.Slowest <= 0 {
				t.Errorf("%s: window %v..%v retained %d roots, slowest %v", name, win.Start, win.End, win.Retained, win.Slowest)
			}
		}
	}
	// The cluster run counted every measured root.
	if cres.Trace.Roots != cres.Requests {
		t.Errorf("cluster trace saw %d roots, run measured %d", cres.Trace.Roots, cres.Requests)
	}
	if pres.Trace.Roots != pres.Requests {
		t.Errorf("pipeline trace saw %d roots, run measured %d", pres.Trace.Roots, pres.Requests)
	}
}

// TestTraceJSONRoundTrip pins that a traced result survives the save/replay
// cycle tailbench-report -input depends on: marshal, unmarshal, same trace.
func TestTraceJSONRoundTrip(t *testing.T) {
	res := tracedSimPipeline(t, 8)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back PipelineResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace == nil {
		t.Fatal("trace report lost in the JSON round trip")
	}
	if !reflect.DeepEqual(back.Trace, res.Trace) {
		t.Error("trace report changed across the JSON round trip")
	}
}

// TestFanoutStragglerDominatesAtK16 pins the acceptance claim: at fan-out 16
// over an exponential-tailed shard service, the tail attribution must
// identify the max-of-k straggler wait — not queueing, service, or network —
// as the dominant component of the retained p99 trees.
func TestFanoutStragglerDominatesAtK16(t *testing.T) {
	samples := expServiceSamples(500, time.Millisecond, 7)
	spec := fanoutSpec(16, samples, nil, 150)
	spec.Trace = &TraceSpec{TopK: 16}
	res, err := RunPipeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Trace.Attr
	if a.Straggler <= a.Queue || a.Straggler <= a.Service || a.Straggler <= a.Net || a.Straggler <= a.Hedge {
		t.Errorf("straggler component %v is not dominant: queue=%v service=%v net=%v hedge=%v",
			a.Straggler, a.Queue, a.Service, a.Net, a.Hedge)
	}
	// And it is not merely the largest sliver: the fan-in wait on the
	// slowest of 16 shards should carry the bulk of the retained tails.
	if frac := float64(a.Straggler) / float64(a.Total()); frac < 0.4 {
		t.Errorf("straggler fraction %.2f of retained tails, want >= 0.4", frac)
	}
}

// checkWellFormed asserts the structural invariants of one retained span
// tree: a single root span, every span closed with End >= Start, children
// nested inside their parents (hedge losers exempt — they are the only spans
// allowed to outlive their parent), and exactly one winning copy per hedged
// node. eps absorbs wall-clock measurement jitter on the live path; pass 0
// for virtual-time trees.
func checkWellFormed(t *testing.T, rt RequestTrace, eps time.Duration) (hedgeSpans int) {
	t.Helper()
	byID := make(map[int32]TraceSpan, len(rt.Spans))
	for _, sp := range rt.Spans {
		if _, dup := byID[sp.ID]; dup {
			t.Fatalf("duplicate span ID %d", sp.ID)
		}
		byID[sp.ID] = sp
	}
	root, ok := byID[0]
	if !ok || root.Kind != trace.KindRoot || root.Parent != -1 {
		t.Fatalf("malformed root span: %+v", root)
	}
	if root.End <= root.Start {
		t.Fatalf("root span never closed: %+v", root)
	}
	winners := map[int32]int{} // hedged request span -> winning copies
	hedged := map[int32]int{}  // hedged request span -> recorded copies
	for _, sp := range rt.Spans {
		if sp.End < sp.Start {
			t.Errorf("span %d (%s) ends %v before its start %v", sp.ID, sp.Kind, sp.End, sp.Start)
		}
		if sp.ID == 0 {
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Errorf("span %d (%s) has dangling parent %d", sp.ID, sp.Kind, sp.Parent)
			continue
		}
		if sp.Start < parent.Start-eps {
			t.Errorf("span %d (%s) starts %v before its parent's %v", sp.ID, sp.Kind, sp.Start, parent.Start)
		}
		loser := sp.Kind == trace.KindHedge && !sp.Winner
		inLoser := parent.Kind == trace.KindHedge && !parent.Winner
		if !loser && !inLoser && sp.End > parent.End+eps {
			t.Errorf("span %d (%s) ends %v after its parent %d closed at %v", sp.ID, sp.Kind, sp.End, sp.Parent, parent.End)
		}
		if sp.Kind == trace.KindRequest && !sp.Err && sp.Replica < 0 {
			t.Errorf("request span %d settled without a replica", sp.ID)
		}
		if sp.Kind == trace.KindHedge {
			hedgeSpans++
			hedged[sp.Parent]++
			if sp.Winner {
				winners[sp.Parent]++
			}
		}
	}
	for req, copies := range hedged {
		if w := winners[req]; w != 1 && !byID[req].Err {
			t.Errorf("hedged node %d recorded %d copies with %d winners, want exactly 1", req, copies, w)
		}
	}
	return hedgeSpans
}

// TestTraceSimWellFormed asserts the structural invariants with zero
// tolerance on the virtual-time engines.
func TestTraceSimWellFormed(t *testing.T) {
	for _, rt := range tracedSimCluster(t).Trace.Slowest {
		checkWellFormed(t, rt, 0)
	}
	hedges := 0
	for _, rt := range tracedSimPipeline(t, 8).Trace.Slowest {
		hedges += checkWellFormed(t, rt, 0)
	}
	if hedges == 0 {
		t.Error("hedged pipeline retained no hedge spans in its slowest trees")
	}
}

// TestTraceLiveWellFormed runs the live goroutine engines — a cluster and a
// hedged fan-out pipeline against a real application — with tracing on and
// asserts every retained span tree is well-formed. The test is meaningful
// under -race: span trees are appended from worker and reader goroutines.
func TestTraceLiveWellFormed(t *testing.T) {
	cres, err := RunCluster(ClusterSpec{
		App: "masstree", Mode: ModeIntegrated, Policy: "leastq", Replicas: 2, Threads: 1,
		QPS: 3000, Requests: 300, Warmup: 40, Scale: 0.05, Seed: 1,
		Trace: &TraceSpec{TopK: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Trace == nil || len(cres.Trace.Slowest) == 0 {
		t.Fatal("live cluster run retained no traces")
	}
	for _, rt := range cres.Trace.Slowest {
		checkWellFormed(t, rt, 5*time.Millisecond)
	}

	pres, err := RunPipeline(PipelineSpec{
		Mode: ModeIntegrated,
		Tiers: []TierSpec{
			{Cluster: ClusterSpec{App: "masstree", Replicas: 1, Scale: 0.05}},
			{Cluster: ClusterSpec{App: "masstree", Replicas: 2, Scale: 0.05}, FanOut: 2,
				Hedge: &HedgeSpec{Delay: 100 * time.Microsecond}},
		},
		QPS: 400, Requests: 400, Warmup: 40, Seed: 1,
		Trace: &TraceSpec{TopK: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pres.Trace == nil || len(pres.Trace.Slowest) == 0 {
		t.Fatal("live pipeline run retained no traces")
	}
	hedges := 0
	for _, rt := range pres.Trace.Slowest {
		hedges += checkWellFormed(t, rt, 5*time.Millisecond)
	}
	if pres.Tiers[1].HedgesIssued > 0 && hedges == 0 {
		t.Error("hedges were issued but no retained tree recorded a hedge span")
	}
	// The live attribution reconciles like the simulated one: exact by
	// construction, no wall-clock slop in the decomposition itself.
	for _, rt := range pres.Trace.Slowest {
		if rt.Attr.Total() != rt.Sojourn {
			t.Errorf("live root at +%v: attribution total %v != sojourn %v", rt.At, rt.Attr.Total(), rt.Sojourn)
		}
	}
}

// TestClusterHeterogeneousThreads pins the per-replica thread-count spec on
// both engines: the result reports the vector and per-replica values, and a
// queue-aware balancer routes proportionally more traffic to the bigger
// replica (the point of the satellite — distinguishing "slow replica" from
// "straggler request" in attribution studies).
func TestClusterHeterogeneousThreads(t *testing.T) {
	samples := syntheticServiceSamples(300, 11)
	res, err := RunCluster(ClusterSpec{
		App: "masstree", Mode: ModeSimulated, Policy: "leastq", Replicas: 3, Threads: 1,
		ThreadsPerReplica: []int{4, 1, 1},
		QPS:               2500, Requests: 4000, Warmup: 400, Seed: 9,
		ServiceSamples: samples,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 1, 1}; fmt.Sprint(res.ThreadsPer) != fmt.Sprint(want) {
		t.Fatalf("ThreadsPer = %v, want %v", res.ThreadsPer, want)
	}
	for i, rep := range res.PerReplica {
		if want := []int{4, 1, 1}[i]; rep.Threads != want {
			t.Errorf("replica %d reports %d threads, want %d", i, rep.Threads, want)
		}
	}
	if res.PerReplica[0].Dispatched <= res.PerReplica[1].Dispatched ||
		res.PerReplica[0].Dispatched <= res.PerReplica[2].Dispatched {
		t.Errorf("4-thread replica did not absorb the most traffic: %d/%d/%d",
			res.PerReplica[0].Dispatched, res.PerReplica[1].Dispatched, res.PerReplica[2].Dispatched)
	}

	live, err := RunCluster(ClusterSpec{
		App: "masstree", Mode: ModeIntegrated, Policy: "leastq", Replicas: 2, Threads: 1,
		ThreadsPerReplica: []int{2, 1},
		QPS:               2000, Requests: 200, Warmup: 40, Scale: 0.05, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(live.ThreadsPer) != fmt.Sprint([]int{2, 1}) {
		t.Fatalf("live ThreadsPer = %v", live.ThreadsPer)
	}
	if live.PerReplica[0].Threads != 2 || live.PerReplica[1].Threads != 1 {
		t.Errorf("live per-replica threads = %d/%d, want 2/1", live.PerReplica[0].Threads, live.PerReplica[1].Threads)
	}
	if live.Errors != 0 {
		t.Errorf("live heterogeneous run had %d errors", live.Errors)
	}

	// Validation: vector length must match the pool.
	_, err = RunCluster(ClusterSpec{
		App: "masstree", Mode: ModeSimulated, Policy: "leastq", Replicas: 3,
		ThreadsPerReplica: []int{4, 1},
		QPS:               1000, Requests: 100, ServiceSamples: samples,
	})
	if err == nil {
		t.Error("mismatched ThreadsPerReplica length was accepted")
	}
	_, err = RunPipeline(PipelineSpec{
		Mode: ModeSimulated,
		Tiers: []TierSpec{{Cluster: ClusterSpec{
			App: "masstree", Replicas: 3, ThreadsPerReplica: []int{4, 1}, ServiceSamples: samples,
		}}},
		QPS: 1000, Requests: 100,
	})
	if err == nil {
		t.Error("pipeline accepted a mismatched per-tier ThreadsPerReplica length")
	}
}

// TestMetricsLiveSurface runs a live cluster with a metrics registry
// attached, serves it over HTTP, and asserts the endpoint exposes the run's
// counters — the `tailbench -metrics-addr` acceptance path.
func TestMetricsLiveSurface(t *testing.T) {
	reg := NewMetricsRegistry()
	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := RunCluster(ClusterSpec{
		App: "masstree", Mode: ModeIntegrated, Policy: "leastq", Replicas: 2, Threads: 1,
		QPS: 3000, Requests: 300, Warmup: 40, Scale: 0.05, Seed: 1,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("cluster_completed").Value(); got < res.Requests {
		t.Errorf("cluster_completed = %d, want >= %d measured requests", got, res.Requests)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"cluster_completed", "cluster_sojourn_p99_seconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output is missing %q:\n%s", want, text)
		}
	}
}
