package sweep

import (
	"strings"
	"testing"

	"tailbench"
)

func TestPolicyComparisonSimulated(t *testing.T) {
	opts := Quick()
	opts.Requests = 300
	opts.Warmup = 60
	opts.Loads = []float64{0.3, 0.7}
	curves, err := PolicyComparison("masstree", tailbench.ModeSimulated, 2, 1,
		[]string{"random", "leastq"}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("got %d curves, want 2", len(curves))
	}
	for _, c := range curves {
		if c.Replicas != 2 || len(c.Points) != 2 {
			t.Fatalf("malformed curve %+v", c)
		}
		if !strings.Contains(c.Label(), c.Policy) || !strings.Contains(c.Label(), "2x1thr") {
			t.Errorf("cluster label should carry policy and shape: %q", c.Label())
		}
		for _, p := range c.Points {
			if p.P99 <= 0 {
				t.Errorf("%s: p99 missing at load %.2f", c.Label(), p.Load)
			}
		}
	}
}

func TestReplicaScalingSimulated(t *testing.T) {
	opts := Quick()
	opts.Requests = 300
	opts.Warmup = 60
	opts.Loads = []float64{0.5}
	curves, err := ReplicaScaling("masstree", tailbench.ModeSimulated, "jsq2", []int{1, 4}, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 || curves[0].Replicas != 1 || curves[1].Replicas != 4 {
		t.Fatalf("unexpected curves: %+v", curves)
	}
	// Every curve shares one calibration, so the same relative load maps to
	// exactly four times the absolute QPS on the 4-replica cluster.
	q1, q4 := curves[0].Points[0].QPS, curves[1].Points[0].QPS
	if q1 <= 0 || q4 != 4*q1 {
		t.Errorf("replica scaling loads look wrong: 1-replica %.0f qps vs 4-replica %.0f qps", q1, q4)
	}
}
