package sweep

import (
	"fmt"
	"time"

	"tailbench"
)

// ShapeSeries is the windowed latency series of one balancer policy riding a
// time-varying load shape: how the tail evolves window by window as the
// shape plays out, plus the peak excursion for at-a-glance comparison.
type ShapeSeries struct {
	App      string
	Mode     tailbench.Mode
	Policy   string
	Replicas int
	Threads  int
	// Shape and ShapeSpec identify the arrival process driven through the
	// cluster.
	Shape     string
	ShapeSpec string
	// Windows is the per-window series (offered/achieved QPS, sojourn
	// percentiles).
	Windows []tailbench.WindowStats
	// PeakP99 is the worst windowed p99 — the figure of merit for how the
	// policy rode the shape's excursion; OverallP99 is the whole-run p99
	// that averages the excursion away (the contrast windowing exists to
	// expose).
	PeakP99    time.Duration
	OverallP99 time.Duration
}

// Label returns the series label used in figure output.
func (s ShapeSeries) Label() string {
	return fmt.Sprintf("%s/%s/%dx%dthr/%s/%s", s.App, s.Mode, s.Replicas, s.Threads, s.Policy, s.Shape)
}

// ShapeComparison measures how each balancer policy rides a time-varying
// load shape (a spike, a diurnal cycle, a burst train) on one cluster
// configuration, producing one windowed ShapeSeries per policy. The
// application is calibrated once — or not at all, when the caller supplies
// a Calibration it already holds (e.g. the one it sized the shape's rates
// from) — and every simulated policy run reuses the same service-time
// samples, so policies are compared against an identical workload; window
// sets the accounting width (zero picks one automatically from the shape's
// horizon).
func ShapeComparison(app string, mode tailbench.Mode, replicas, threads int, policies []string, shape tailbench.LoadShape, window time.Duration, cal *Calibration, opts Options) ([]*ShapeSeries, error) {
	if shape == nil {
		return nil, fmt.Errorf("sweep: ShapeComparison requires a load shape")
	}
	if len(policies) == 0 {
		policies = tailbench.BalancerPolicies()
	}
	if replicas < 1 {
		replicas = 1
	}
	if threads < 1 {
		threads = 1
	}
	opts = opts.normalize()
	if cal == nil {
		var err error
		cal, err = Calibrate(app, opts)
		if err != nil {
			return nil, err
		}
	}
	var samples []time.Duration
	if mode == tailbench.ModeSimulated {
		samples = cal.ServiceSamples
	}
	var series []*ShapeSeries
	for _, policy := range policies {
		res, err := tailbench.RunCluster(tailbench.ClusterSpec{
			App:                 app,
			Mode:                mode,
			Policy:              policy,
			Replicas:            replicas,
			Threads:             threads,
			Load:                shape,
			Window:              window,
			Requests:            opts.Requests,
			Warmup:              opts.Warmup,
			Scale:               opts.Scale,
			Seed:                opts.Seed,
			Validate:            opts.Validate,
			CalibrationRequests: opts.CalibrationRequests,
			ServiceSamples:      samples,
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: %s cluster %s under %s: %w", app, policy, shape.Spec(), err)
		}
		s := &ShapeSeries{
			App:        app,
			Mode:       mode,
			Policy:     policy,
			Replicas:   replicas,
			Threads:    threads,
			Shape:      res.Shape,
			ShapeSpec:  res.ShapeSpec,
			Windows:    res.Windows,
			OverallP99: res.Sojourn.P99,
		}
		for _, w := range res.Windows {
			if w.P99 > s.PeakP99 {
				s.PeakP99 = w.P99
			}
		}
		series = append(series, s)
	}
	return series, nil
}
