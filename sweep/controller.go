package sweep

import (
	"fmt"
	"time"

	"tailbench"
)

// ControllerCase is one entry of a ControllerComparison: a cluster sizing
// plus an optional autoscaling controller. A nil Autoscale runs a fixed
// cluster of Replicas servers — the static baselines (base-provisioned,
// peak-provisioned) an elastic run is judged against.
type ControllerCase struct {
	// Name labels the case in figures; empty derives a label from the
	// controller policy (or "static-N" for fixed clusters).
	Name string
	// Replicas is the initial (and, without a controller, permanent)
	// replica count.
	Replicas int
	// Autoscale enables the controller for this case.
	Autoscale *tailbench.AutoscaleSpec
}

// label resolves the case's display name.
func (c ControllerCase) label() string {
	if c.Name != "" {
		return c.Name
	}
	if c.Autoscale == nil {
		return fmt.Sprintf("static-%d", c.Replicas)
	}
	policy := c.Autoscale.Policy
	if policy == "" {
		policy = "static"
	}
	return policy
}

// ControllerSeries is the outcome of one ControllerCase riding a load shape:
// the windowed latency/membership series plus the two scalar figures of
// merit — the worst windowed p99 (SLO side) and the replica-seconds spent
// (cost side). Comparing series answers the provisioning question the
// TailBench methodology raises for elastic services: how close to
// peak-provisioned tail latency can a controller get, at what fraction of
// the peak-provisioned cost?
type ControllerSeries struct {
	Case ControllerCase
	App  string
	Mode tailbench.Mode
	// Policy is the balancer policy every case shares.
	Policy string
	// Shape and ShapeSpec identify the arrival process.
	Shape     string
	ShapeSpec string
	// Windows is the per-window series (offered/achieved QPS, mean
	// provisioned replicas, sojourn percentiles).
	Windows []tailbench.WindowStats
	// PeakP99 is the worst windowed p99; OverallP99 the whole-run p99.
	PeakP99    time.Duration
	OverallP99 time.Duration
	// PeakReplicas and ReplicaSeconds are the run's provisioning ledger.
	PeakReplicas   int
	ReplicaSeconds float64
	// ScalingEvents counts the controller decisions that changed the
	// active replica count.
	ScalingEvents int
}

// Label returns the series label used in figure output.
func (s ControllerSeries) Label() string {
	return fmt.Sprintf("%s/%s/%s/%s/%s", s.App, s.Mode, s.Policy, s.Case.label(), s.Shape)
}

// ControllerComparison measures how each case — fixed clusters and
// autoscaled ones — rides a time-varying load shape on one application,
// producing one windowed ControllerSeries per case. The application is
// calibrated once (or not at all when the caller supplies the Calibration it
// sized the shape from), and every simulated case reuses the same
// service-time samples, so controllers are compared against an identical
// workload; window sets the accounting width (zero picks one automatically
// from the shape's horizon).
func ControllerComparison(app string, mode tailbench.Mode, policy string, cases []ControllerCase, shape tailbench.LoadShape, window time.Duration, cal *Calibration, opts Options) ([]*ControllerSeries, error) {
	if shape == nil {
		return nil, fmt.Errorf("sweep: ControllerComparison requires a load shape")
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("sweep: ControllerComparison requires at least one case")
	}
	if policy == "" {
		policy = "leastq"
	}
	opts = opts.normalize()
	if cal == nil {
		var err error
		cal, err = Calibrate(app, opts)
		if err != nil {
			return nil, err
		}
	}
	var samples []time.Duration
	if mode == tailbench.ModeSimulated {
		samples = cal.ServiceSamples
	}
	var series []*ControllerSeries
	for _, c := range cases {
		res, err := tailbench.RunCluster(tailbench.ClusterSpec{
			App:                 app,
			Mode:                mode,
			Policy:              policy,
			Replicas:            c.Replicas,
			Load:                shape,
			Window:              window,
			Requests:            opts.Requests,
			Warmup:              opts.Warmup,
			Scale:               opts.Scale,
			Seed:                opts.Seed,
			Validate:            opts.Validate,
			Autoscale:           c.Autoscale,
			CalibrationRequests: opts.CalibrationRequests,
			ServiceSamples:      samples,
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: %s cluster case %q under %s: %w", app, c.label(), shape.Spec(), err)
		}
		s := &ControllerSeries{
			Case:           c,
			App:            app,
			Mode:           mode,
			Policy:         policy,
			Shape:          res.Shape,
			ShapeSpec:      res.ShapeSpec,
			Windows:        res.Windows,
			OverallP99:     res.Sojourn.P99,
			PeakReplicas:   res.PeakReplicas,
			ReplicaSeconds: res.ReplicaSeconds,
			ScalingEvents:  len(res.ScalingEvents),
		}
		for _, w := range res.Windows {
			if w.P99 > s.PeakP99 {
				s.PeakP99 = w.P99
			}
		}
		series = append(series, s)
	}
	return series, nil
}
