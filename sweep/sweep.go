// Package sweep contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (Secs. III, V, VI, and VII). Each
// driver returns plain data structures; cmd/tailbench-sweep and the
// repository-level benchmarks print them as the rows/series the paper
// reports. DESIGN.md Sec. 3 maps experiments to drivers.
package sweep

import (
	"fmt"
	"time"

	"tailbench"
)

// Options control the cost/fidelity trade-off of an experiment run.
type Options struct {
	// Scale is the application dataset scale passed to every run.
	Scale float64
	// Requests is the number of measured requests per data point.
	Requests int
	// Warmup is the number of discarded warmup requests per data point.
	Warmup int
	// CalibrationRequests is the number of requests used to measure the
	// service-time distribution (Fig. 2, saturation estimation, simulator
	// calibration).
	CalibrationRequests int
	// Loads are the offered loads, as fractions of the measured saturation
	// throughput, at which latency is sampled.
	Loads []float64
	// Seed makes the experiment deterministic.
	Seed int64
	// Validate enables response validation during measurement runs.
	Validate bool
}

// Quick returns options sized for continuous integration and the Go
// benchmarks: small request counts, scaled-down datasets. The shapes of the
// resulting curves match the full configuration; only statistical noise is
// higher.
func Quick() Options {
	return Options{
		Scale:               0.05,
		Requests:            400,
		Warmup:              80,
		CalibrationRequests: 150,
		Loads:               []float64{0.2, 0.5, 0.7},
		Seed:                1,
	}
}

// Full returns options sized for a faithful reproduction run (minutes per
// application rather than seconds).
func Full() Options {
	return Options{
		Scale:               1.0,
		Requests:            5000,
		Warmup:              500,
		CalibrationRequests: 1000,
		Loads:               []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Seed:                1,
	}
}

// normalize fills zero fields with Quick defaults.
func (o Options) normalize() Options {
	q := Quick()
	if o.Scale <= 0 {
		o.Scale = q.Scale
	}
	if o.Requests <= 0 {
		o.Requests = q.Requests
	}
	if o.Warmup <= 0 {
		o.Warmup = q.Warmup
	}
	if o.CalibrationRequests <= 0 {
		o.CalibrationRequests = q.CalibrationRequests
	}
	if len(o.Loads) == 0 {
		o.Loads = q.Loads
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Calibration is the low-load characterization of one application: its
// service-time distribution and estimated saturation throughput.
type Calibration struct {
	App            string
	ServiceSamples []time.Duration
	ServiceCDF     []tailbench.CDFPoint
	Service        tailbench.LatencyStats
	// SaturationQPS is the estimated single-thread saturation throughput.
	SaturationQPS float64
}

// Calibrate measures the uncontended service-time distribution of an
// application. This is the data behind Fig. 2 and the per-application
// saturation estimates every other experiment uses to pick offered loads.
func Calibrate(app string, opts Options) (*Calibration, error) {
	opts = opts.normalize()
	samples, err := tailbench.MeasureServiceTimes(app, opts.Scale, opts.Seed, opts.CalibrationRequests)
	if err != nil {
		return nil, fmt.Errorf("sweep: calibrating %s: %w", app, err)
	}
	cdf := make([]tailbench.CDFPoint, 0, len(samples))
	res := summarize(samples)
	for _, p := range sampleCDF(samples) {
		cdf = append(cdf, p)
	}
	return &Calibration{
		App:            app,
		ServiceSamples: samples,
		ServiceCDF:     cdf,
		Service:        res,
		SaturationQPS:  tailbench.SaturationQPS(samples, 1),
	}, nil
}

// LoadPoint is one (load, latency) sample of a latency-vs-load curve.
type LoadPoint struct {
	// Load is the offered load as a fraction of saturation.
	Load float64
	// QPS is the absolute offered load.
	QPS float64
	// Mean, P95, and P99 are sojourn-latency statistics at this load.
	Mean time.Duration
	P95  time.Duration
	P99  time.Duration
	// QueueMean is the mean queuing delay at this load.
	QueueMean time.Duration
	// MeanQueueDepth is the mean outstanding-request count observed at
	// dispatch instants (cluster experiments only).
	MeanQueueDepth float64
}

// LoadCurve is a latency-vs-load series for one (app, mode, threads)
// combination.
type LoadCurve struct {
	App     string
	Mode    tailbench.Mode
	Threads int
	// IdealMemory marks simulated curves run with the idealized memory
	// system (Fig. 8).
	IdealMemory bool
	// Policy and Replicas identify cluster experiment series (see
	// PolicyComparison and ReplicaScaling); Replicas is zero for
	// single-server curves.
	Policy   string
	Replicas int
	Points   []LoadPoint
}

// Label returns the series label used in figure output.
func (c LoadCurve) Label() string {
	l := fmt.Sprintf("%s/%s/%dthr", c.App, c.Mode, c.Threads)
	if c.Replicas > 0 {
		l = fmt.Sprintf("%s/%s/%dx%dthr/%s", c.App, c.Mode, c.Replicas, c.Threads, c.Policy)
	}
	if c.IdealMemory {
		l += "/ideal-mem"
	}
	return l
}

// LatencyVsLoad measures mean/p95/p99 sojourn latency across offered loads
// for one application in one mode (Fig. 3 uses ModeIntegrated with one
// thread; Fig. 5/6/7 call it once per mode).
func LatencyVsLoad(app string, mode tailbench.Mode, threads int, opts Options) (*LoadCurve, error) {
	opts = opts.normalize()
	if threads < 1 {
		threads = 1
	}
	cal, err := Calibrate(app, opts)
	if err != nil {
		return nil, err
	}
	curve := &LoadCurve{App: app, Mode: mode, Threads: threads}
	for _, load := range opts.Loads {
		qps := load * cal.SaturationQPS * float64(threads)
		res, err := tailbench.Run(tailbench.RunSpec{
			App:      app,
			Mode:     mode,
			QPS:      qps,
			Threads:  threads,
			Requests: opts.Requests,
			Warmup:   opts.Warmup,
			Scale:    opts.Scale,
			Seed:     opts.Seed,
			Validate: opts.Validate,
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: %s at load %.2f: %w", app, load, err)
		}
		curve.Points = append(curve.Points, LoadPoint{
			Load:      load,
			QPS:       qps,
			Mean:      res.Sojourn.Mean,
			P95:       res.Sojourn.P95,
			P99:       res.Sojourn.P99,
			QueueMean: res.Queue.Mean,
		})
	}
	return curve, nil
}

// ThreadScaling measures p95 latency versus per-thread load for several
// thread counts (Fig. 4).
func ThreadScaling(app string, threadCounts []int, opts Options) ([]*LoadCurve, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4}
	}
	var curves []*LoadCurve
	for _, n := range threadCounts {
		c, err := LatencyVsLoad(app, tailbench.ModeIntegrated, n, opts)
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// ConfigComparison measures p95 latency versus load under all four harness
// configurations (Fig. 5 with one thread, Fig. 7 with four).
func ConfigComparison(app string, threads int, opts Options) ([]*LoadCurve, error) {
	modes := []tailbench.Mode{tailbench.ModeNetworked, tailbench.ModeLoopback, tailbench.ModeIntegrated, tailbench.ModeSimulated}
	var curves []*LoadCurve
	for _, mode := range modes {
		c, err := LatencyVsLoad(app, mode, threads, opts)
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// TableIRow is one column of Table I: an application's configuration and its
// p95 latency at 20%, 50%, and 70% load. The MPKI rows of the paper are
// hardware-counter measurements we cannot reproduce in pure Go; DESIGN.md
// documents the substitution (service-time statistics are reported instead).
type TableIRow struct {
	App        string
	Domain     string
	MeanSvc    time.Duration
	P95At20    time.Duration
	P95At50    time.Duration
	P95At70    time.Duration
	Saturation float64
}

// appDomains maps applications to the domain row of Table I.
var appDomains = map[string]string{
	"xapian":   "Online Search",
	"masstree": "Key-Value Store",
	"moses":    "Real-Time Translation",
	"sphinx":   "Speech Recognition",
	"img-dnn":  "Image Recognition",
	"specjbb":  "Java Middleware",
	"silo":     "OLTP (in-memory)",
	"shore":    "OLTP (disk/SSD)",
}

// Domain returns the Table I domain label for an application.
func Domain(app string) string {
	if d, ok := appDomains[app]; ok {
		return d
	}
	return "unknown"
}

// TableI reproduces Table I for the given applications: per-app p95 latency
// at 20%, 50%, and 70% of saturation load.
func TableI(apps []string, opts Options) ([]TableIRow, error) {
	if len(apps) == 0 {
		apps = tailbench.Apps()
	}
	o := opts.normalize()
	o.Loads = []float64{0.2, 0.5, 0.7}
	var rows []TableIRow
	for _, app := range apps {
		curve, err := LatencyVsLoad(app, tailbench.ModeIntegrated, 1, o)
		if err != nil {
			return nil, err
		}
		cal, err := Calibrate(app, o)
		if err != nil {
			return nil, err
		}
		row := TableIRow{
			App:        app,
			Domain:     Domain(app),
			MeanSvc:    cal.Service.Mean,
			Saturation: cal.SaturationQPS,
		}
		for _, p := range curve.Points {
			switch p.Load {
			case 0.2:
				row.P95At20 = p.P95
			case 0.5:
				row.P95At50 = p.P95
			case 0.7:
				row.P95At70 = p.P95
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CaseStudyResult is the Fig. 8 data for one application: normalized p95
// latency versus per-thread load under the M/G/n queueing model (no
// threading overheads) and under the simulated system with an idealized
// memory system, for 1 and 4 threads.
type CaseStudyResult struct {
	App string
	// BaselineP95 is the low-load single-thread p95 used for normalization.
	BaselineP95 time.Duration
	MG1         *LoadCurve // M/G/1 queueing model
	MG4         *LoadCurve // M/G/4 queueing model
	Ideal1      *LoadCurve // simulated, idealized memory, 1 thread
	Ideal4      *LoadCurve // simulated, idealized memory, 4 threads
}

// CaseStudy reproduces the Sec. VII case study for one application.
func CaseStudy(app string, opts Options) (*CaseStudyResult, error) {
	opts = opts.normalize()
	out := &CaseStudyResult{App: app}
	// The M/G/n model is the simulated system with all threading overheads
	// removed (ideal memory and, by construction of the model, no
	// synchronization inflation): service times stay constant as threads
	// are added. We realize it by running the simulated mode with 1 and 4
	// threads and PerfError forced to 1 and contention disabled via the
	// queueing-model path: ideal memory plus an app with no sync overhead.
	mg1, err := simulatedCurve(app, 1, true, true, opts)
	if err != nil {
		return nil, err
	}
	mg4, err := simulatedCurve(app, 4, true, true, opts)
	if err != nil {
		return nil, err
	}
	ideal1, err := simulatedCurve(app, 1, true, false, opts)
	if err != nil {
		return nil, err
	}
	ideal4, err := simulatedCurve(app, 4, true, false, opts)
	if err != nil {
		return nil, err
	}
	out.MG1, out.MG4, out.Ideal1, out.Ideal4 = mg1, mg4, ideal1, ideal4
	if len(ideal1.Points) > 0 {
		out.BaselineP95 = ideal1.Points[0].P95
	}
	return out, nil
}

// simulatedCurve runs the simulated mode across loads. idealMemory removes
// memory contention; pureQueueing additionally removes synchronization
// overhead, turning the run into the M/G/n model of Fig. 8.
func simulatedCurve(app string, threads int, idealMemory, pureQueueing bool, opts Options) (*LoadCurve, error) {
	opts = opts.normalize()
	cal, err := Calibrate(app, opts)
	if err != nil {
		return nil, err
	}
	model, err := tailbench.Calibrate(app, cal.ServiceSamples, 1.0)
	if err != nil {
		return nil, err
	}
	if pureQueueing {
		model.SyncOverhead = 0
		model.MemContention = 0
	}
	curve := &LoadCurve{App: app, Mode: tailbench.ModeSimulated, Threads: threads, IdealMemory: idealMemory}
	for _, load := range opts.Loads {
		qps := load * cal.SaturationQPS * float64(threads)
		res, err := model.Run(simRunParams(qps, threads, idealMemory, opts))
		if err != nil {
			return nil, err
		}
		curve.Points = append(curve.Points, LoadPoint{
			Load: load,
			QPS:  qps,
			Mean: res.Sojourn.Mean,
			P95:  res.Sojourn.P95,
			P99:  res.Sojourn.P99,
		})
	}
	return curve, nil
}

// CoordinatedOmissionResult quantifies the closed-loop methodology error
// (Sec. II-B): the ratio of open-loop to closed-loop p95 latency at the same
// offered load.
type CoordinatedOmissionResult struct {
	App           string
	Load          float64
	OpenLoopP95   time.Duration
	ClosedLoopP95 time.Duration
	// UnderestimateFactor is OpenLoopP95 / ClosedLoopP95; values well above
	// 1 show how badly a closed-loop tester underestimates tail latency.
	UnderestimateFactor float64
}

// CoordinatedOmission compares the open-loop harness against a closed-loop
// load tester near saturation.
func CoordinatedOmission(app string, load float64, opts Options) (*CoordinatedOmissionResult, error) {
	opts = opts.normalize()
	if load <= 0 {
		load = 0.9
	}
	cal, err := Calibrate(app, opts)
	if err != nil {
		return nil, err
	}
	qps := load * cal.SaturationQPS
	spec := tailbench.RunSpec{
		App: app, Mode: tailbench.ModeIntegrated, QPS: qps, Threads: 1,
		Requests: opts.Requests, Warmup: opts.Warmup, Scale: opts.Scale, Seed: opts.Seed,
	}
	open, err := tailbench.Run(spec)
	if err != nil {
		return nil, err
	}
	spec.Clients = 1
	closed, err := tailbench.RunClosedLoop(spec)
	if err != nil {
		return nil, err
	}
	out := &CoordinatedOmissionResult{
		App:           app,
		Load:          load,
		OpenLoopP95:   open.Sojourn.P95,
		ClosedLoopP95: closed.Sojourn.P95,
	}
	if closed.Sojourn.P95 > 0 {
		out.UnderestimateFactor = float64(open.Sojourn.P95) / float64(closed.Sojourn.P95)
	}
	return out, nil
}
