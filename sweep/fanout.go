package sweep

import (
	"fmt"
	"time"

	"tailbench"
)

// FanoutPoint is one entry of a FanoutStudy: a two-tier pipeline (front-end
// fanning out to K shards) measured without hedging and, optionally, with a
// hedged shard edge.
type FanoutPoint struct {
	// K is the fan-out degree; ShardReplicas the shard tier's replica count
	// (equal to K so the per-replica shard load stays constant across
	// points — the amplification isolates the max-of-K fan-in, not a
	// capacity change) and FrontReplicas the front-end's.
	K             int
	FrontReplicas int
	ShardReplicas int
	// P50 and P99 are the unhedged end-to-end root sojourn percentiles;
	// Amplification is P99 over the K=1 point's P99 (1 for the first
	// point, 0 when the study did not include K=1).
	P50           time.Duration
	P99           time.Duration
	Amplification float64
	// ShardP99 is the shard tier's per-sub-request p99 and CriticalP99 the
	// per-root slowest-shard p99 — their ratio is the fan-in straggler
	// penalty at this K.
	ShardP99    time.Duration
	CriticalP99 time.Duration
	// Hedged companion (zero values when the study ran without hedging):
	// the shard edge hedged at HedgeDelay cut the end-to-end p99 to
	// HedgedP99, a fractional reduction of HedgeCut, at the price of
	// HedgesIssued duplicate sub-requests (of which HedgeWins beat their
	// original).
	HedgeDelay   time.Duration
	HedgedP99    time.Duration
	HedgeCut     float64
	HedgesIssued uint64
	HedgeWins    uint64
}

// Label renders the point for figure output.
func (p *FanoutPoint) Label() string {
	return fmt.Sprintf("k=%d", p.K)
}

// FanoutStudySpec parameterizes a FanoutStudy.
type FanoutStudySpec struct {
	// App is the application serving the shard tier (and, unless
	// FrontSpeedup separates them, the front-end).
	App string
	// Mode is the execution path (ModeSimulated recommended: every point
	// reuses one calibration, so points differ only in topology).
	Mode tailbench.Mode
	// Policy is the balancer policy of both tiers (default leastq).
	Policy string
	// Fanouts are the fan-out degrees to measure (e.g. 1, 4, 16).
	Fanouts []int
	// QPS is the root arrival rate; 0 picks 20% of one shard replica's
	// saturation throughput — a load where queueing noise does not drown
	// the max-of-K effect.
	QPS float64
	// Hedge adds a hedged companion run per point: the shard edge
	// duplicates sub-requests after Hedge.Delay, first response wins. A
	// zero Delay picks each point's budget automatically as that point's
	// unhedged shard-tier p95 sojourn — "hedge once a sub-request is
	// slower than 95% of its peers", the classic tail-at-scale deployment
	// rule. Nil measures only the unhedged points.
	Hedge *tailbench.HedgeSpec
	// Window is the windowed-accounting width (negative disables windows;
	// fan-out studies usually run a constant rate, where they add little).
	Window time.Duration
	// FrontReplicas sizes the front-end cluster (default 2).
	FrontReplicas int
	// FrontSpeedup models the front-end as a lightweight aggregator: its
	// service times are the shard samples divided by this factor
	// (simulated mode only; values <= 1 make the front-end a full replica
	// of the shard service, the default). The canonical partitioned
	// service has a cheap root fanning out to expensive leaves, so the
	// interesting studies set this well above 1.
	FrontSpeedup float64
}

// FanoutStudy measures tail amplification versus fan-out degree: for each
// degree K in spec.Fanouts it runs a two-tier pipeline — a front-end
// cluster fanning out to a K-replica shard cluster — at the same root rate.
// Shard replicas scale with K so every point offers the same per-replica
// shard load; what grows with K is only the number of stragglers a root
// must wait out, so the end-to-end p99 climbs with K even though every
// shard's own latency distribution is unchanged (the "tail at scale"
// amplification). With spec.Hedge set, each point also quantifies how much
// of that amplification request hedging buys back, and at what duplicate
// cost.
//
// The application is calibrated once (or not at all when the caller
// supplies cal, whose ServiceSamples may also be synthetic for fully
// deterministic studies), and every simulated run reuses the same samples,
// so points differ only in topology.
func FanoutStudy(spec FanoutStudySpec, cal *Calibration, opts Options) ([]*FanoutPoint, error) {
	if len(spec.Fanouts) == 0 {
		return nil, fmt.Errorf("sweep: FanoutStudy requires at least one fan-out degree")
	}
	for _, k := range spec.Fanouts {
		if k < 1 {
			return nil, fmt.Errorf("sweep: fan-out degree must be >= 1 (got %d)", k)
		}
	}
	if spec.Policy == "" {
		spec.Policy = "leastq"
	}
	if spec.FrontReplicas <= 0 {
		spec.FrontReplicas = 2
	}
	opts = opts.normalize()
	if cal == nil {
		var err error
		cal, err = Calibrate(spec.App, opts)
		if err != nil {
			return nil, err
		}
	}
	if spec.QPS <= 0 {
		spec.QPS = 0.2 * cal.SaturationQPS
	}
	var shardSamples, frontSamples []time.Duration
	if spec.Mode == tailbench.ModeSimulated {
		shardSamples = cal.ServiceSamples
		frontSamples = shardSamples
		if spec.FrontSpeedup > 1 {
			frontSamples = make([]time.Duration, len(shardSamples))
			for i, s := range shardSamples {
				frontSamples[i] = time.Duration(float64(s) / spec.FrontSpeedup)
			}
		}
	}

	run := func(k int, hedgeSpec *tailbench.HedgeSpec) (*tailbench.PipelineResult, error) {
		return tailbench.RunPipeline(tailbench.PipelineSpec{
			Mode: spec.Mode,
			Tiers: []tailbench.TierSpec{
				{Name: "frontend", Cluster: tailbench.ClusterSpec{
					App: spec.App, Policy: spec.Policy, Replicas: spec.FrontReplicas,
					Scale: opts.Scale, Validate: opts.Validate,
					CalibrationRequests: opts.CalibrationRequests, ServiceSamples: frontSamples,
				}},
				{Name: "shards", Cluster: tailbench.ClusterSpec{
					App: spec.App, Policy: spec.Policy, Replicas: k,
					Scale: opts.Scale, Validate: opts.Validate,
					CalibrationRequests: opts.CalibrationRequests, ServiceSamples: shardSamples,
				}, FanOut: k, Hedge: hedgeSpec},
			},
			QPS:      spec.QPS,
			Window:   spec.Window,
			Requests: opts.Requests,
			Warmup:   opts.Warmup,
			Seed:     opts.Seed,
		})
	}

	var points []*FanoutPoint
	var baseP99 time.Duration
	for _, k := range spec.Fanouts {
		res, err := run(k, nil)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s fan-out %d: %w", spec.App, k, err)
		}
		shards := res.Tiers[1]
		p := &FanoutPoint{
			K:             k,
			FrontReplicas: res.Tiers[0].Replicas,
			ShardReplicas: shards.Replicas,
			P50:           res.Sojourn.P50,
			P99:           res.Sojourn.P99,
			ShardP99:      shards.Sojourn.P99,
			CriticalP99:   shards.Critical.P99,
		}
		if k == 1 {
			baseP99 = res.Sojourn.P99
		}
		if baseP99 > 0 {
			p.Amplification = float64(p.P99) / float64(baseP99)
		}
		if spec.Hedge != nil {
			budget := spec.Hedge.Delay
			if budget <= 0 {
				budget = shards.Sojourn.P95
			}
			hres, err := run(k, &tailbench.HedgeSpec{Delay: budget})
			if err != nil {
				return nil, fmt.Errorf("sweep: %s fan-out %d hedged: %w", spec.App, k, err)
			}
			p.HedgeDelay = budget
			p.HedgedP99 = hres.Sojourn.P99
			if p.P99 > 0 {
				p.HedgeCut = 1 - float64(p.HedgedP99)/float64(p.P99)
			}
			p.HedgesIssued = hres.Tiers[1].HedgesIssued
			p.HedgeWins = hres.Tiers[1].HedgeWins
		}
		points = append(points, p)
	}
	return points, nil
}
