package sweep

import (
	"time"

	"tailbench"
	"tailbench/internal/sim"
	"tailbench/internal/stats"
	"tailbench/internal/workload"
)

// summarize converts raw samples into the public LatencyStats type.
func summarize(samples []time.Duration) tailbench.LatencyStats {
	s := stats.SummaryFromSamples(samples)
	return tailbench.LatencyStats{
		Count: s.Count, Mean: s.Mean, P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max, Min: s.Min,
	}
}

// sampleCDF converts raw samples into the public CDF representation.
func sampleCDF(samples []time.Duration) []tailbench.CDFPoint {
	var out []tailbench.CDFPoint
	for _, p := range stats.SampleCDF(samples) {
		out = append(out, tailbench.CDFPoint{Value: p.Value, Cumulative: p.Cumulative})
	}
	return out
}

// simRunParams builds the simulated-system run parameters for one sweep
// point.
func simRunParams(qps float64, threads int, idealMemory bool, opts Options) sim.RunParams {
	return sim.RunParams{
		QPS:         qps,
		Threads:     threads,
		Requests:    opts.Requests,
		Warmup:      opts.Warmup,
		Seed:        workload.SplitSeed(opts.Seed, 31),
		IdealMemory: idealMemory,
	}
}
