package sweep

import (
	"testing"
	"time"

	"tailbench"
)

func TestControllerComparisonSimulated(t *testing.T) {
	opts := Quick()
	opts.Requests = 6000
	opts.Warmup = 600
	// Size the spike against the application's measured single-replica
	// capacity: base load fits 1 replica, the crest needs ~3.
	cal, err := Calibrate("masstree", opts)
	if err != nil {
		t.Fatal(err)
	}
	sat := cal.SaturationQPS
	// Time base chosen so the request budget covers the whole profile.
	horizon := time.Duration(float64(opts.Requests+opts.Warmup) / (1.1 * sat) * float64(time.Second))
	shape := tailbench.Spike(0.5*sat, 2.7*sat, horizon/3, horizon/3)
	cases := []ControllerCase{
		{Replicas: 4}, // statically peak-provisioned baseline
		{Replicas: 1, Autoscale: &tailbench.AutoscaleSpec{
			Policy: "threshold", MinReplicas: 1, MaxReplicas: 4,
			Interval: horizon / 200, HighDepth: 1.5, LowDepth: 0.4,
		}},
	}
	series, err := ControllerComparison("masstree", tailbench.ModeSimulated, "leastq",
		cases, shape, horizon/12, cal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	static, elastic := series[0], series[1]
	if static.Case.label() != "static-4" || elastic.Case.label() != "threshold" {
		t.Fatalf("labels = %q/%q", static.Case.label(), elastic.Case.label())
	}
	if static.PeakReplicas != 4 || static.ScalingEvents != 0 {
		t.Errorf("static baseline: peak=%d events=%d, want 4/0", static.PeakReplicas, static.ScalingEvents)
	}
	if elastic.PeakReplicas <= 1 || elastic.ScalingEvents == 0 {
		t.Errorf("elastic case never scaled: peak=%d events=%d", elastic.PeakReplicas, elastic.ScalingEvents)
	}
	if elastic.ReplicaSeconds >= static.ReplicaSeconds {
		t.Errorf("elastic replica-seconds %.2f not below static %.2f", elastic.ReplicaSeconds, static.ReplicaSeconds)
	}
	for _, s := range series {
		if len(s.Windows) == 0 || s.PeakP99 <= 0 {
			t.Errorf("%s: missing windowed series", s.Label())
		}
	}
	// The elastic windows carry the membership trace the static ones pin at
	// a constant.
	varied := false
	for _, w := range elastic.Windows {
		if w.Replicas > 0 && w.Replicas != elastic.Windows[0].Replicas {
			varied = true
		}
	}
	if !varied {
		t.Error("elastic windowed replica counts never varied")
	}
}

func TestControllerComparisonValidation(t *testing.T) {
	if _, err := ControllerComparison("masstree", tailbench.ModeSimulated, "", nil, nil, 0, nil, Quick()); err == nil {
		t.Fatal("nil shape should be rejected")
	}
	if _, err := ControllerComparison("masstree", tailbench.ModeSimulated, "", nil, tailbench.Constant(100), 0, nil, Quick()); err == nil {
		t.Fatal("empty case list should be rejected")
	}
}
