package sweep

import (
	"fmt"
	"time"

	"tailbench"
)

// clusterCurve measures one latency-vs-load series for a replica cluster:
// offered loads are fractions of the cluster's nominal saturation
// throughput (replicas * threads * single-thread saturation QPS). The
// caller supplies the calibration so every curve of an experiment shares
// the same saturation estimate — policies and replica counts are then
// compared at identical absolute offered loads.
func clusterCurve(app string, mode tailbench.Mode, policy string, replicas, threads int, slowdowns []float64, cal *Calibration, opts Options) (*LoadCurve, error) {
	opts = opts.normalize()
	if replicas < 1 {
		replicas = 1
	}
	if threads < 1 {
		threads = 1
	}
	// Reuse the calibration's service samples for every simulated point so
	// the application is measured once per experiment, not once per point.
	var samples []time.Duration
	if mode == tailbench.ModeSimulated {
		samples = cal.ServiceSamples
	}
	curve := &LoadCurve{App: app, Mode: mode, Threads: threads, Policy: policy, Replicas: replicas}
	for _, load := range opts.Loads {
		qps := load * cal.SaturationQPS * float64(replicas*threads)
		res, err := tailbench.RunCluster(tailbench.ClusterSpec{
			App:                 app,
			Mode:                mode,
			Policy:              policy,
			Replicas:            replicas,
			Threads:             threads,
			QPS:                 qps,
			Requests:            opts.Requests,
			Warmup:              opts.Warmup,
			Scale:               opts.Scale,
			Seed:                opts.Seed,
			Validate:            opts.Validate,
			Slowdowns:           slowdowns,
			CalibrationRequests: opts.CalibrationRequests,
			ServiceSamples:      samples,
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: %s cluster %s at load %.2f: %w", app, policy, load, err)
		}
		// Mean depth over all dispatch instants: weight each replica's mean
		// by how many dispatches it observed.
		var depthSum, dispatched float64
		for _, rep := range res.PerReplica {
			depthSum += rep.MeanQueueDepth * float64(rep.Dispatched)
			dispatched += float64(rep.Dispatched)
		}
		var depth float64
		if dispatched > 0 {
			depth = depthSum / dispatched
		}
		curve.Points = append(curve.Points, LoadPoint{
			Load:           load,
			QPS:            qps,
			Mean:           res.Sojourn.Mean,
			P95:            res.Sojourn.P95,
			P99:            res.Sojourn.P99,
			QueueMean:      res.Queue.Mean,
			MeanQueueDepth: depth,
		})
	}
	return curve, nil
}

// PolicyComparison measures latency versus load for one cluster shape under
// several balancer policies, producing one LoadCurve per policy. slowdowns
// optionally injects stragglers (empty means a uniform cluster); mode
// selects the live integrated path, the loopback/networked paths (each
// replica behind its own NetServer, balancer client-side), or the fast
// deterministic simulation.
func PolicyComparison(app string, mode tailbench.Mode, replicas, threads int, policies []string, slowdowns []float64, opts Options) ([]*LoadCurve, error) {
	if len(policies) == 0 {
		policies = tailbench.BalancerPolicies()
	}
	cal, err := Calibrate(app, opts)
	if err != nil {
		return nil, err
	}
	var curves []*LoadCurve
	for _, policy := range policies {
		c, err := clusterCurve(app, mode, policy, replicas, threads, slowdowns, cal, opts)
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// ClusterModeComparison measures latency versus load for one cluster shape
// and balancer policy across several execution modes — the mode is the sweep
// axis. Comparing integrated against loopback and networked curves isolates
// what the network stack (and the synthetic NIC/switch delay) adds to the
// tail, the Fig. 1 configuration study lifted to the cluster setting; the
// networked modes also swap the balancer's exact in-process queue signal for
// the stale client-side depth estimate, so policy gaps narrow. Calibration
// is shared across modes, so every curve sees identical absolute offered
// loads.
func ClusterModeComparison(app string, modes []tailbench.Mode, policy string, replicas, threads int, opts Options) ([]*LoadCurve, error) {
	if len(modes) == 0 {
		modes = []tailbench.Mode{tailbench.ModeIntegrated, tailbench.ModeLoopback, tailbench.ModeNetworked}
	}
	if policy == "" {
		policy = "leastq"
	}
	cal, err := Calibrate(app, opts)
	if err != nil {
		return nil, err
	}
	var curves []*LoadCurve
	for _, mode := range modes {
		c, err := clusterCurve(app, mode, policy, replicas, threads, nil, cal, opts)
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// ReplicaScaling measures latency versus load for one balancer policy across
// several replica counts, producing one LoadCurve per count. Because loads
// are expressed as fractions of each cluster's own nominal capacity, the
// curves overlay how well tail latency holds up as the same relative load is
// spread over more replicas.
func ReplicaScaling(app string, mode tailbench.Mode, policy string, replicaCounts []int, threads int, opts Options) ([]*LoadCurve, error) {
	if len(replicaCounts) == 0 {
		replicaCounts = []int{1, 2, 4}
	}
	cal, err := Calibrate(app, opts)
	if err != nil {
		return nil, err
	}
	var curves []*LoadCurve
	for _, n := range replicaCounts {
		c, err := clusterCurve(app, mode, policy, n, threads, nil, cal, opts)
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
	}
	return curves, nil
}
