package sweep

import (
	"testing"
	"time"

	"tailbench"
)

func TestShapeComparisonSimulated(t *testing.T) {
	opts := Quick()
	opts.Requests = 3000
	opts.Warmup = 300
	shape := tailbench.Spike(400, 1200, time.Second, time.Second)
	series, err := ShapeComparison("masstree", tailbench.ModeSimulated, 2, 1,
		[]string{"random", "leastq"}, shape, 500*time.Millisecond, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	for _, s := range series {
		if s.Shape != "spike" || s.ShapeSpec != shape.Spec() {
			t.Errorf("%s: shape labels = %q/%q", s.Policy, s.Shape, s.ShapeSpec)
		}
		if len(s.Windows) == 0 {
			t.Errorf("%s: no windowed series", s.Policy)
		}
		if s.PeakP99 <= 0 || s.PeakP99 < s.OverallP99/2 {
			t.Errorf("%s: implausible peak p99 %v (overall %v)", s.Policy, s.PeakP99, s.OverallP99)
		}
		if s.Label() == "" {
			t.Errorf("%s: empty label", s.Policy)
		}
	}
}

func TestShapeComparisonRequiresShape(t *testing.T) {
	if _, err := ShapeComparison("masstree", tailbench.ModeSimulated, 2, 1, nil, nil, 0, nil, Quick()); err == nil {
		t.Fatal("nil shape should be rejected")
	}
}
