package sweep

import (
	"testing"

	"tailbench"
)

// tinyOptions keeps sweep tests fast: the smallest dataset and request
// counts that still produce meaningful curves.
func tinyOptions() Options {
	return Options{
		Scale:               0.01,
		Requests:            150,
		Warmup:              30,
		CalibrationRequests: 80,
		Loads:               []float64{0.2, 0.7},
		Seed:                1,
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	q := Quick()
	if o.Scale != q.Scale || o.Requests != q.Requests || len(o.Loads) != len(q.Loads) {
		t.Errorf("normalize should fill Quick defaults: %+v", o)
	}
	f := Full()
	if f.Scale != 1.0 || f.Requests <= q.Requests {
		t.Errorf("Full should be larger than Quick: %+v", f)
	}
}

func TestCalibrateMasstree(t *testing.T) {
	cal, err := Calibrate("masstree", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cal.App != "masstree" {
		t.Errorf("app = %q", cal.App)
	}
	if len(cal.ServiceSamples) == 0 || len(cal.ServiceCDF) == 0 {
		t.Fatal("calibration should produce samples and a CDF")
	}
	if cal.SaturationQPS <= 0 {
		t.Fatal("saturation should be positive")
	}
	if cal.Service.Mean <= 0 {
		t.Fatal("mean service time should be positive")
	}
	if _, err := Calibrate("nope", tinyOptions()); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestLatencyVsLoadCurve(t *testing.T) {
	// xapian has service times long enough (tens to hundreds of
	// microseconds even at small scale) that queuing dominates harness
	// noise, so the Fig. 3 shape is visible with few requests.
	opts := tinyOptions()
	opts.Scale = 0.05
	opts.Loads = []float64{0.2, 0.85}
	curve, err := LatencyVsLoad("xapian", tailbench.ModeIntegrated, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 2 {
		t.Fatalf("points = %d", len(curve.Points))
	}
	// Compare queuing delay, not sojourn p95: sojourn includes dispatcher
	// lateness (measured from the scheduled instant, by design), and on a
	// busy single-CPU machine an OS sleep overshoot at low load adds
	// milliseconds of lateness noise that can swamp the queuing signal the
	// Fig. 3 shape is about.
	lowQ, highQ := curve.Points[0].QueueMean, curve.Points[1].QueueMean
	if highQ <= lowQ {
		t.Errorf("queuing at 85%% load (%v) should exceed queuing at 20%% load (%v) — the Fig. 3 shape", highQ, lowQ)
	}
	if curve.Label() == "" {
		t.Error("label should be non-empty")
	}
}

func TestThreadScaling(t *testing.T) {
	curves, err := ThreadScaling("masstree", []int{1, 2}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	if curves[0].Threads != 1 || curves[1].Threads != 2 {
		t.Errorf("thread labels wrong")
	}
	// Default thread counts.
	if _, err := ThreadScaling("nope", nil, tinyOptions()); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestConfigComparison(t *testing.T) {
	curves, err := ConfigComparison("specjbb", 1, Options{
		Scale: 0.25, Requests: 120, Warmup: 30, CalibrationRequests: 60, Loads: []float64{0.3}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves = %d, want 4 (networked, loopback, integrated, simulated)", len(curves))
	}
	seen := map[tailbench.Mode]bool{}
	for _, c := range curves {
		seen[c.Mode] = true
		if len(c.Points) != 1 {
			t.Errorf("curve %s has %d points", c.Label(), len(c.Points))
		}
	}
	if len(seen) != 4 {
		t.Errorf("modes covered: %v", seen)
	}
}

func TestTableI(t *testing.T) {
	rows, err := TableI([]string{"masstree", "specjbb"}, Options{
		Scale: 0.05, Requests: 150, Warmup: 30, CalibrationRequests: 60, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Domain == "unknown" || row.Domain == "" {
			t.Errorf("domain missing for %s", row.App)
		}
		if row.P95At20 <= 0 || row.P95At50 <= 0 || row.P95At70 <= 0 {
			t.Errorf("%s: missing load points: %+v", row.App, row)
		}
		if row.MeanSvc <= 0 || row.Saturation <= 0 {
			t.Errorf("%s: calibration columns missing: %+v", row.App, row)
		}
	}
	if Domain("xapian") != "Online Search" || Domain("zzz") != "unknown" {
		t.Error("Domain mapping broken")
	}
}

func TestCaseStudy(t *testing.T) {
	cs, err := CaseStudy("masstree", Options{
		Scale: 0.01, Requests: 3000, Warmup: 300, CalibrationRequests: 100,
		Loads: []float64{0.2, 0.7}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*LoadCurve{"MG1": cs.MG1, "MG4": cs.MG4, "Ideal1": cs.Ideal1, "Ideal4": cs.Ideal4} {
		if c == nil || len(c.Points) != 2 {
			t.Fatalf("curve %s missing or wrong size", name)
		}
	}
	if cs.BaselineP95 <= 0 {
		t.Error("baseline p95 missing")
	}
	// masstree has negligible threading overheads, so at equal per-thread
	// load the 4-thread ideal-memory curve should not be dramatically worse
	// than the M/G/4 prediction (within 2x at the 70% point).
	if got, want := cs.Ideal4.Points[1].P95, cs.MG4.Points[1].P95; got > 2*want {
		t.Errorf("ideal-memory 4-thread p95 (%v) should track M/G/4 (%v) for a low-overhead app", got, want)
	}
}

func TestCoordinatedOmission(t *testing.T) {
	res, err := CoordinatedOmission("masstree", 0, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Load != 0.9 {
		t.Errorf("default load = %f", res.Load)
	}
	if res.UnderestimateFactor <= 1 {
		t.Errorf("open-loop p95 (%v) should exceed closed-loop p95 (%v) near saturation",
			res.OpenLoopP95, res.ClosedLoopP95)
	}
	if _, err := CoordinatedOmission("nope", 0.5, tinyOptions()); err == nil {
		t.Error("unknown app should fail")
	}
}
