package sweep

import (
	"bytes"
	"testing"
	"time"

	"tailbench"
)

// gridTestConfig is a ≥1000-cell grid kept cheap per cell: 4 policies ×
// 2 shapes × 2 controllers × 2 fan-outs = 32 tuples × 32 reps = 1024 cells.
func gridTestConfig(t *testing.T, workers int) GridConfig {
	t.Helper()
	spike, err := tailbench.ParseLoadShape("spike:600,2400,400ms,150ms")
	if err != nil {
		t.Fatalf("ParseLoadShape: %v", err)
	}
	return GridConfig{
		Axes: GridAxes{
			Policies:    []string{"random", "roundrobin", "leastq", "jsq2"},
			Shapes:      []tailbench.LoadShape{nil, spike},
			Controllers: []string{ControllerStatic, "threshold"},
			FanOuts:     []int{1, 4},
		},
		Replicas:      2,
		ShardReplicas: 4,
		Requests:      40,
		Reps:          32,
		Seed:          42,
		Workers:       workers,
	}
}

// TestGridWorkerCountInvariant is the sweep's core determinism contract:
// the merged JSONL of a ≥1000-cell grid is byte-identical whether the
// cells ran on one worker or many, because every cell's seed derives from
// the root seed and the cell index alone.
func TestGridWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-cell grid in -short mode")
	}
	serial, err := RunGrid(gridTestConfig(t, 1))
	if err != nil {
		t.Fatalf("RunGrid(workers=1): %v", err)
	}
	if serial.Cells < 1000 {
		t.Fatalf("grid has %d cells, want >= 1000", serial.Cells)
	}
	parallel, err := RunGrid(gridTestConfig(t, 8))
	if err != nil {
		t.Fatalf("RunGrid(workers=8): %v", err)
	}

	// SimWallNs is the one report field that measures the host, not the
	// simulation; zero it on both sides before the byte comparison.
	for _, g := range []*GridResult{serial, parallel} {
		for i := range g.Reports {
			g.Reports[i].SimWallNs = 0
		}
	}

	var a, b bytes.Buffer
	if err := serial.WriteJSONL(&a); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := parallel.WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSONL differs between workers=1 and workers=8 (%d vs %d bytes)", a.Len(), b.Len())
	}
	var c bytes.Buffer
	if err := serial.WriteCSV(&c); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	var d bytes.Buffer
	if err := parallel.WriteCSV(&d); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !bytes.Equal(c.Bytes(), d.Bytes()) {
		t.Fatal("CSV differs between workers=1 and workers=8")
	}
}

// TestGridEnumeration pins the cell order (tuple-major, rep-minor) and the
// per-cell seed derivation, which together make the output layout part of
// the package contract.
func TestGridEnumeration(t *testing.T) {
	cfg := GridConfig{
		Axes: GridAxes{
			Policies:    []string{"a", "b"},
			Controllers: []string{ControllerStatic},
			FanOuts:     []int{1, 2},
		},
		Reps: 2,
	}.normalize()
	cells := enumerate(cfg)
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	seeds := map[int64]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d: Index = %d", i, c.Index)
		}
		if c.Rep != i%2 {
			t.Errorf("cell %d: Rep = %d, want %d", i, c.Rep, i%2)
		}
		if seeds[c.Seed] {
			t.Errorf("cell %d: duplicate seed %d", i, c.Seed)
		}
		seeds[c.Seed] = true
	}
	// Tuple-major order: policy varies slowest, rep fastest.
	if cells[0].Policy != "a" || cells[4].Policy != "b" {
		t.Errorf("policy order: got %q then %q", cells[0].Policy, cells[4].Policy)
	}
	if cells[0].FanOut != 1 || cells[2].FanOut != 2 {
		t.Errorf("fan-out order: got %d then %d", cells[0].FanOut, cells[2].FanOut)
	}
}

// TestGridMarginalAllocs bounds the sweep layer end to end in the style of
// the cluster engine's marginal-allocs pin: growing a cell by 10000 requests
// must not grow the allocation count by more than ~5 per 100 extra events —
// per-event cost stays amortized into the fixed, spec-sized setup, and the
// sweep layer adds no per-request allocations of its own on top of the
// engine.
func TestGridMarginalAllocs(t *testing.T) {
	base := GridConfig{
		Axes:     GridAxes{Policies: []string{"leastq"}},
		Replicas: 2,
		Seed:     5,
		Workers:  1,
	}
	run := func(requests int) float64 {
		cfg := base
		cfg.Requests = requests
		return testing.AllocsPerRun(3, func() {
			if _, err := RunGrid(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := run(2000), run(12000)
	if per := (big - small) / 10000; per > 0.05 {
		t.Fatalf("marginal allocations %.4f/request (small=%.0f big=%.0f), want <= 0.05", per, small, big)
	}
}

// TestRunCellArenaReuse pins the arena's reason to exist: consecutive
// RunCell calls on a warm arena skip the per-cell sample derivation and
// pool construction, so they allocate strictly less than arena-less calls.
// The warm path must also stay flat — re-running must not regrow anything.
func TestRunCellArenaReuse(t *testing.T) {
	cfg := GridConfig{
		Axes:     GridAxes{Policies: []string{"leastq"}, FanOuts: []int{4}},
		Replicas: 2,
		Requests: 60,
		Seed:     9,
	}
	cell := enumerate(cfg.normalize())[0]
	arena := NewCellArena(cfg)
	run := func(a *CellArena) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := RunCell(cfg, cell, CellLimits{}, a); err != nil {
				t.Fatal(err)
			}
		})
	}
	warm1 := run(arena)
	warm2 := run(arena)
	cold := run(nil)
	if warm2 > warm1 {
		t.Errorf("warm arena allocations grew between passes: %.0f then %.0f", warm1, warm2)
	}
	if warm2 >= cold {
		t.Errorf("warm arena run allocates %.0f, arena-less %.0f — reuse saves nothing", warm2, cold)
	}
}

// TestGridControllerCells checks that elastic cells actually scale: a
// threshold-controlled cell under a spike must report a different
// provisioning ledger than its static twin.
func TestGridControllerCells(t *testing.T) {
	spike, err := tailbench.ParseLoadShape("spike:400,4000,200ms,800ms")
	if err != nil {
		t.Fatalf("ParseLoadShape: %v", err)
	}
	base := GridConfig{
		Axes: GridAxes{
			Policies:    []string{"leastq"},
			Shapes:      []tailbench.LoadShape{spike},
			Controllers: []string{ControllerStatic, "threshold"},
			FanOuts:     []int{1},
		},
		Replicas: 2,
		Requests: 600,
		Seed:     7,
		Window:   200 * time.Millisecond,
	}
	res, err := RunGrid(base)
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(res.Reports))
	}
	static, elastic := res.Reports[0], res.Reports[1]
	if static.Controller != ControllerStatic || elastic.Controller != "threshold" {
		t.Fatalf("controller labels: %q, %q", static.Controller, elastic.Controller)
	}
	if static.PeakReplicas != base.Replicas {
		t.Errorf("static cell peaked at %d replicas, want %d", static.PeakReplicas, base.Replicas)
	}
	if elastic.PeakReplicas <= base.Replicas {
		t.Errorf("threshold cell never scaled past %d replicas under a 10x spike", elastic.PeakReplicas)
	}
	if static.PeakWindowP99 == 0 || elastic.PeakWindowP99 == 0 {
		t.Error("windowed accounting missing from reports")
	}
}
