package sweep

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"tailbench"
	"tailbench/internal/cluster"
	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/pipeline"
	"tailbench/internal/stats"
	"tailbench/internal/workload"
)

// GridAxes enumerates the dimensions of a configuration grid. The cell set
// is the cross product policy × shape × controller × fan-out; empty axes
// default to a single neutral value (see GridConfig.normalize).
type GridAxes struct {
	// Policies are the balancer policies under comparison.
	Policies []string
	// Shapes are the arrival processes (any LoadShape; parse CLI specs
	// with tailbench.ParseLoadShape).
	Shapes []tailbench.LoadShape
	// Controllers are autoscaling policies; the sentinel "static" (or "")
	// keeps the cell's replica set fixed.
	Controllers []string
	// FanOuts are fan-out degrees: 1 runs a single cluster, k > 1 runs a
	// two-tier front+shards pipeline whose shard edge fans out k ways.
	FanOuts []int
}

// ControllerStatic is the controller-axis sentinel for a fixed replica set.
const ControllerStatic = "static"

// GridConfig parameterizes a RunGrid sweep: the axes, the fixed topology
// every cell shares, replication, and parallelism. Every cell is an
// independent virtual-time simulation with its own seed derived from Seed
// and the cell's index, so the merged results are bit-identical no matter
// how many workers ran them or in what order.
type GridConfig struct {
	Axes GridAxes

	// Replicas and Threads shape the serving cluster (fan-out cells use
	// them for the front tier). Defaults: 4 replicas, 1 thread.
	Replicas int
	Threads  int
	// ShardReplicas sizes the shard tier of fan-out cells (default 8).
	ShardReplicas int
	// Requests and Warmup are per-cell measured and discarded request
	// counts (defaults 400 and 10%).
	Requests int
	Warmup   int
	// Reps runs each axis tuple this many times with distinct derived
	// seeds (default 1); replication is what turns a grid cell into a
	// confidence interval instead of a point estimate.
	Reps int
	// Seed is the root seed every per-cell seed is split from (default 1).
	Seed int64
	// Workers caps the worker goroutines (default GOMAXPROCS).
	Workers int
	// ServiceMean is the mean of the synthetic exponential service-time
	// distribution shared by every cell (default 1ms). One fixed sample
	// set is drawn from the root seed, so cells differ only in their axes
	// and per-cell seed.
	ServiceMean time.Duration
	// Window is the windowed-accounting width passed to every cell (zero
	// enables windows automatically for time-varying shapes).
	Window time.Duration
}

// gridApp labels grid cells in results. The simulated path never
// instantiates the application when ServiceSamples are supplied, but the
// name must still resolve in the app registry.
const gridApp = "masstree"

// serviceSampleCount is the size of the shared synthetic service-time
// sample set cells resample from.
const serviceSampleCount = 512

func (c GridConfig) normalize() GridConfig {
	if len(c.Axes.Policies) == 0 {
		c.Axes.Policies = []string{"leastq"}
	}
	if len(c.Axes.Shapes) == 0 {
		c.Axes.Shapes = []tailbench.LoadShape{nil} // nil = constant at the derived QPS
	}
	if len(c.Axes.Controllers) == 0 {
		c.Axes.Controllers = []string{ControllerStatic}
	}
	if len(c.Axes.FanOuts) == 0 {
		c.Axes.FanOuts = []int{1}
	}
	if c.Replicas <= 0 {
		c.Replicas = 4
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.ShardReplicas <= 0 {
		c.ShardReplicas = 8
	}
	if c.Requests <= 0 {
		c.Requests = 400
	}
	if c.Warmup == 0 {
		c.Warmup = c.Requests / 10
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ServiceMean <= 0 {
		c.ServiceMean = time.Millisecond
	}
	return c
}

// SimReport is one grid cell's outcome — one JSONL row, in the spirit of
// the pacs_sweep runner's per-tuple verdict records.
type SimReport struct {
	// Cell is the flat cell index (tuple-major, rep-minor) and Rep the
	// replication index within the tuple. Seed is the cell's derived seed.
	Cell int
	Rep  int
	Seed int64

	Policy     string
	Shape      string
	ShapeSpec  string
	Controller string
	FanOut     int

	OfferedQPS  float64
	AchievedQPS float64
	Requests    uint64

	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	Max  time.Duration

	// PeakWindowP99 is the worst windowed p99 (zero when the cell ran
	// without windows) — the statistic SLO verdicts are taken against
	// under time-varying load.
	PeakWindowP99 time.Duration
	// PeakReplicas and ReplicaSeconds are the provisioning ledger (summed
	// across tiers for fan-out cells).
	PeakReplicas   int
	ReplicaSeconds float64

	// Replicas is the cell's effective serving-tier size: the Cell.Replicas
	// override when one was set (the planner's search coordinate — the shard
	// tier for fan-out cells), else the grid's nominal count.
	Replicas int
	// EventsSimulated counts engine dispatches (warmup included, summed
	// across tiers) and SimWallNs the wall-clock cost of the cell's
	// simulation. SimWallNs is the one field that varies run to run;
	// byte-identity comparisons zero it first.
	EventsSimulated int64
	SimWallNs       int64
	// Aborted reports the cell stopped early on a CellLimits threshold;
	// AbortReason says which one ("slo" or "cost", empty otherwise). An
	// slo-aborted cell is definitively infeasible — the blown window would
	// appear identically in the full run.
	Aborted     bool
	AbortReason string
}

// GridResult is the merged outcome of a grid sweep, reports in cell order.
type GridResult struct {
	// Cells is the number of runs: tuples × reps.
	Cells   int
	Reports []SimReport
}

// Cell identifies one run in the grid's cell space: the axis tuple, the
// replication index, the derived seed, and (for planner searches) an
// optional serving-tier replica override. RunGrid enumerates cells itself;
// the capacity planner constructs them directly.
type Cell struct {
	// Index is the flat cell index and Rep the replication index within the
	// tuple; both are echoed into the report. Seed is the cell's derived
	// seed (zero is normalized to 1, matching the engines).
	Index int
	Rep   int
	Seed  int64

	Policy     string
	Shape      tailbench.LoadShape
	Controller string
	FanOut     int

	// Replicas, when positive, overrides the serving tier's size — the
	// cluster for fan-out 1, the shard tier (where the controller and the
	// fan-in straggler pressure land) for fan-out cells, whose front tier
	// stays at the grid's nominal size. Zero keeps the nominal count. The
	// offered load always derives from the nominal topology, so the override
	// resizes capacity under an unchanged workload — the capacity-planning
	// question.
	Replicas int
}

// CellLimits carries a cell's early-abort thresholds, zero meaning no limit.
// Both are polled at accounting-window boundaries, so they require an
// explicit positive GridConfig.Window to ever fire.
type CellLimits struct {
	// SLO aborts the cell once its running peak windowed p99 exceeds it —
	// the verdict is definitive, the full run would blow the same window.
	SLO time.Duration
	// MaxReplicaSeconds aborts the cell once its accrued provisioning cost
	// strictly exceeds it. Cost only grows, so the aborted cell can never
	// undercut the bound; note the aborted run yields NO feasibility
	// verdict.
	MaxReplicaSeconds float64
}

// enumerate lists every cell in deterministic tuple-major order. The
// per-cell seed is split from the root seed by flat index, so a cell's RNG
// streams depend only on its coordinates — never on scheduling.
func enumerate(cfg GridConfig) []Cell {
	var cells []Cell
	idx := 0
	for _, pol := range cfg.Axes.Policies {
		for _, sh := range cfg.Axes.Shapes {
			for _, ctrl := range cfg.Axes.Controllers {
				for _, k := range cfg.Axes.FanOuts {
					for rep := 0; rep < cfg.Reps; rep++ {
						cells = append(cells, Cell{
							Index:      idx,
							Rep:        rep,
							Seed:       workload.SplitSeed(cfg.Seed, int64(idx)),
							Policy:     pol,
							Shape:      sh,
							Controller: ctrl,
							FanOut:     k,
						})
						idx++
					}
				}
			}
		}
	}
	return cells
}

// RunGrid fans the configuration grid across Workers goroutines, each cell
// an independent deterministic simulation, and merges the per-cell reports
// in cell order. Because every cell's seed derives from the root seed and
// the cell index alone, the merged result is byte-for-byte identical
// whether the grid ran on one worker or sixteen.
func RunGrid(cfg GridConfig) (*GridResult, error) {
	cfg = cfg.normalize()
	samples := syntheticServiceTimes(cfg.Seed, cfg.ServiceMean)
	cells := enumerate(cfg)

	reports := make([]SimReport, len(cells))
	errs := make([]error, len(cells))
	work := make(chan int)
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One arena per worker: the sample set is shared (read-only),
			// the replica-pool slices are reused across this worker's cells.
			arena := &CellArena{samples: samples}
			for i := range work {
				reports[i], errs[i] = RunCell(cfg, cells[i], CellLimits{}, arena)
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return &GridResult{Cells: len(cells), Reports: reports}, nil
}

// Normalized returns the config with every default resolved — the exact
// config RunGrid executes. The capacity planner normalizes once up front so
// its search space (replica bounds, window, seeds) is pinned before
// enumeration.
func (c GridConfig) Normalized() GridConfig { return c.normalize() }

// syntheticServiceTimes draws the shared exponential service-time sample
// set from the root seed (stream 77, distinct from the engines' streams).
func syntheticServiceTimes(seed int64, mean time.Duration) []time.Duration {
	rng := workload.NewRand(workload.SplitSeed(seed, 77))
	out := make([]time.Duration, serviceSampleCount)
	for i := range out {
		out[i] = time.Duration(rng.ExpFloat64() * float64(mean))
	}
	return out
}

// CellArena is per-worker scratch reused across sequential RunCell calls:
// the synthetic service-time sample set (derived once, not per cell) and
// the replica-pool slices (regrown only when a cell needs a bigger pool).
// An arena must not be shared between concurrent RunCell calls.
type CellArena struct {
	samples []time.Duration
	pools   [2][]cluster.SimReplica
}

// NewCellArena builds a worker's arena for the given grid, deriving the
// shared sample set from the normalized config's seed.
func NewCellArena(cfg GridConfig) *CellArena {
	cfg = cfg.normalize()
	return &CellArena{samples: syntheticServiceTimes(cfg.Seed, cfg.ServiceMean)}
}

// pool returns backing slot i resliced to n replicas, every slot resampling
// from the shared sample set — the exact pool the public wrappers build per
// cell, without the per-cell allocation.
func (a *CellArena) pool(i, n int) []cluster.SimReplica {
	if cap(a.pools[i]) < n {
		a.pools[i] = make([]cluster.SimReplica, n)
	}
	p := a.pools[i][:n]
	for r := range p {
		p[r] = cluster.SimReplica{Service: cluster.EmpiricalService{Samples: a.samples}}
	}
	return p
}

// cellQPS picks the constant arrival rate for cells whose shape axis is nil:
// 70% of the serving tier's nominal capacity.
func cellQPS(cfg GridConfig) float64 {
	return 0.7 * float64(cfg.Replicas*cfg.Threads) / cfg.ServiceMean.Seconds()
}

// autoscale builds the cell's controller config, nil for static cells. It
// resolves the exact bounds the public AutoscaleSpec defaulting would: the
// pool may double, the floor is one replica.
func autoscale(controller string, replicas int) *cluster.AutoscaleConfig {
	if controller == "" || controller == ControllerStatic {
		return nil
	}
	return &cluster.AutoscaleConfig{
		Policy:      controller,
		MinReplicas: 1,
		MaxReplicas: 2 * replicas,
	}
}

// stopHook builds the engine hook for a cell's limits; the returned string
// reports which threshold fired. SLO has priority: an SLO abort is a
// definitive infeasibility verdict, a cost abort only a bound.
func stopHook(limits CellLimits) (func(cluster.SimSnapshot) bool, *string) {
	if limits.SLO <= 0 && limits.MaxReplicaSeconds <= 0 {
		return nil, nil
	}
	reason := new(string)
	return func(s cluster.SimSnapshot) bool {
		if limits.SLO > 0 && s.PeakWindowP99 > limits.SLO {
			*reason = "slo"
			return true
		}
		if limits.MaxReplicaSeconds > 0 && s.ReplicaSeconds > limits.MaxReplicaSeconds {
			*reason = "cost"
			return true
		}
		return false
	}, reason
}

// ScheduleSpan returns the last root-arrival instant of the cell's
// deterministic schedule. Arrivals do not depend on capacity, so every run
// of the cell — at any replica override — spans at least this horizon; the
// planner's branch-and-bound turns that into an a-priori cost lower bound
// (replicas × span) without simulating a single event.
func ScheduleSpan(cfg GridConfig, cell Cell) time.Duration {
	cfg = cfg.normalize()
	qps := cellQPS(cfg)
	if cell.FanOut > 1 {
		qps /= float64(cell.FanOut)
	}
	seed := cell.Seed
	if seed == 0 {
		seed = 1
	}
	// The engines treat WarmupRequests 0 as the 10% default, so the
	// effective schedule length resolves the same way here.
	warm := cfg.Warmup
	if warm == 0 {
		warm = cfg.Requests / 10
	}
	total := cfg.Requests + warm
	shape := load.Or(cell.Shape, qps)
	arrivals := core.NewShapedTrafficShaper(shape, workload.SplitSeed(seed, 2)).Schedule(total)
	return arrivals[total-1]
}

// RunCell runs one grid cell through the internal virtual-time engines and
// assembles its report. It replicates the public RunCluster/RunPipeline
// simulated chains exactly — same defaulting, pool construction, and seed
// streams — so a limit-free RunCell is bit-identical to the pre-planner
// grid cells; limits add the early-abort hook on top of an otherwise
// unchanged run. arena may be nil (a fresh one is derived) and cfg raw (it
// is normalized here; normalization is idempotent).
func RunCell(cfg GridConfig, cell Cell, limits CellLimits, arena *CellArena) (SimReport, error) {
	cfg = cfg.normalize()
	if arena == nil {
		arena = NewCellArena(cfg)
	}
	rpt := SimReport{
		Cell:       cell.Index,
		Rep:        cell.Rep,
		Seed:       cell.Seed,
		Policy:     cell.Policy,
		Controller: cell.Controller,
		FanOut:     cell.FanOut,
	}
	if rpt.Controller == "" {
		rpt.Controller = ControllerStatic
	}
	stop, reason := stopHook(limits)

	if cell.FanOut <= 1 {
		replicas := cfg.Replicas
		if cell.Replicas > 0 {
			replicas = cell.Replicas
		}
		rpt.Replicas = replicas
		as := autoscale(cell.Controller, replicas)
		pool := replicas
		if as != nil {
			pool = as.MaxReplicas
		}
		begin := time.Now()
		res, err := cluster.Simulate(cluster.SimConfig{
			App:             gridApp,
			Policy:          cell.Policy,
			Threads:         cfg.Threads,
			QPS:             cellQPS(cfg),
			Load:            cell.Shape,
			Window:          cfg.Window,
			Requests:        cfg.Requests,
			WarmupRequests:  cfg.Warmup,
			Seed:            cell.Seed,
			Replicas:        arena.pool(0, pool),
			InitialReplicas: replicas,
			Autoscale:       as,
			StopWhen:        stop,
		})
		if err != nil {
			return rpt, fmt.Errorf("sweep: grid cell %d (%s): %w", cell.Index, cell.Policy, err)
		}
		rpt.SimWallNs = time.Since(begin).Nanoseconds()
		rpt.Shape, rpt.ShapeSpec = res.Shape, res.ShapeSpec
		rpt.OfferedQPS, rpt.AchievedQPS = res.OfferedQPS, res.AchievedQPS
		rpt.Requests = res.Requests
		rpt.Mean, rpt.P50, rpt.P95, rpt.P99, rpt.Max =
			res.Sojourn.Mean, res.Sojourn.P50, res.Sojourn.P95, res.Sojourn.P99, res.Sojourn.Max
		rpt.PeakWindowP99 = peakWindowP99(res.Windows)
		rpt.PeakReplicas = res.PeakReplicas
		rpt.ReplicaSeconds = res.ReplicaSeconds
		rpt.EventsSimulated = res.EventsSimulated
		rpt.Aborted = res.Aborted
		if res.Aborted && reason != nil {
			rpt.AbortReason = *reason
		}
		return rpt, nil
	}

	// Fan-out cell: a front tier fanning out into a shard tier; the
	// controller (if any) and the replica override both act on the shards,
	// where the fan-in straggler pressure lands.
	shards := cfg.ShardReplicas
	if cell.Replicas > 0 {
		shards = cell.Replicas
	}
	rpt.Replicas = shards
	as := autoscale(cell.Controller, shards)
	shardPool := shards
	if as != nil {
		shardPool = as.MaxReplicas
	}
	begin := time.Now()
	res, err := pipeline.Simulate(pipeline.Config{
		Tiers: []pipeline.TierConfig{
			{
				Name: "front", App: gridApp, Policy: cell.Policy,
				Threads: cfg.Threads, Replicas: cfg.Replicas,
				Transport:   cluster.TransportInProcess,
				SimReplicas: arena.pool(0, cfg.Replicas),
			},
			{
				Name: "shards", App: gridApp, Policy: cell.Policy,
				Threads: cfg.Threads, Replicas: shards,
				FanOut: cell.FanOut, Autoscale: as,
				Transport:   cluster.TransportInProcess,
				SimReplicas: arena.pool(1, shardPool),
			},
		},
		QPS:            cellQPS(cfg) / float64(cell.FanOut),
		Load:           cell.Shape,
		Window:         cfg.Window,
		Requests:       cfg.Requests,
		WarmupRequests: cfg.Warmup,
		Seed:           cell.Seed,
		StopWhen:       stop,
	})
	if err != nil {
		return rpt, fmt.Errorf("sweep: grid cell %d (%s k=%d): %w", cell.Index, cell.Policy, cell.FanOut, err)
	}
	rpt.SimWallNs = time.Since(begin).Nanoseconds()
	rpt.Shape, rpt.ShapeSpec = res.Shape, res.ShapeSpec
	rpt.OfferedQPS, rpt.AchievedQPS = res.OfferedQPS, res.AchievedQPS
	rpt.Requests = res.Requests
	rpt.Mean, rpt.P50, rpt.P95, rpt.P99, rpt.Max =
		res.Sojourn.Mean, res.Sojourn.P50, res.Sojourn.P95, res.Sojourn.P99, res.Sojourn.Max
	rpt.PeakWindowP99 = peakWindowP99(res.Windows)
	for _, tier := range res.Tiers {
		rpt.PeakReplicas += tier.PeakReplicas
		rpt.ReplicaSeconds += tier.ReplicaSeconds
	}
	rpt.EventsSimulated = res.EventsSimulated
	rpt.Aborted = res.Aborted
	if res.Aborted && reason != nil {
		rpt.AbortReason = *reason
	}
	return rpt, nil
}

func peakWindowP99(ws []stats.WindowStat) time.Duration {
	var peak time.Duration
	for _, w := range ws {
		if w.P99 > peak {
			peak = w.P99
		}
	}
	return peak
}

// WriteJSONL writes one SimReport JSON object per line, in cell order —
// the machine-readable merge whose bytes are independent of worker count.
func (g *GridResult) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range g.Reports {
		if err := enc.Encode(&g.Reports[i]); err != nil {
			return err
		}
	}
	return nil
}

// gridCSVHeader is the CSV column set, latencies in microseconds.
var gridCSVHeader = []string{
	"cell", "rep", "seed", "policy", "shape", "controller", "fanout",
	"offered_qps", "achieved_qps", "requests",
	"mean_us", "p50_us", "p95_us", "p99_us", "max_us",
	"peak_window_p99_us", "peak_replicas", "replica_seconds",
	"replicas", "events_simulated", "sim_wall_ns", "aborted", "abort_reason",
}

// WriteCSV writes the report table with a header row, in cell order.
func (g *GridResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(gridCSVHeader); err != nil {
		return err
	}
	us := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Microsecond), 'f', 1, 64)
	}
	for i := range g.Reports {
		r := &g.Reports[i]
		rec := []string{
			strconv.Itoa(r.Cell), strconv.Itoa(r.Rep), strconv.FormatInt(r.Seed, 10),
			r.Policy, r.Shape, r.Controller, strconv.Itoa(r.FanOut),
			strconv.FormatFloat(r.OfferedQPS, 'f', 2, 64),
			strconv.FormatFloat(r.AchievedQPS, 'f', 2, 64),
			strconv.FormatUint(r.Requests, 10),
			us(r.Mean), us(r.P50), us(r.P95), us(r.P99), us(r.Max),
			us(r.PeakWindowP99), strconv.Itoa(r.PeakReplicas),
			strconv.FormatFloat(r.ReplicaSeconds, 'f', 4, 64),
			strconv.Itoa(r.Replicas),
			strconv.FormatInt(r.EventsSimulated, 10),
			strconv.FormatInt(r.SimWallNs, 10),
			strconv.FormatBool(r.Aborted), r.AbortReason,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
