package sweep

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"tailbench"
	"tailbench/internal/workload"
)

// GridAxes enumerates the dimensions of a configuration grid. The cell set
// is the cross product policy × shape × controller × fan-out; empty axes
// default to a single neutral value (see GridConfig.normalize).
type GridAxes struct {
	// Policies are the balancer policies under comparison.
	Policies []string
	// Shapes are the arrival processes (any LoadShape; parse CLI specs
	// with tailbench.ParseLoadShape).
	Shapes []tailbench.LoadShape
	// Controllers are autoscaling policies; the sentinel "static" (or "")
	// keeps the cell's replica set fixed.
	Controllers []string
	// FanOuts are fan-out degrees: 1 runs a single cluster, k > 1 runs a
	// two-tier front+shards pipeline whose shard edge fans out k ways.
	FanOuts []int
}

// ControllerStatic is the controller-axis sentinel for a fixed replica set.
const ControllerStatic = "static"

// GridConfig parameterizes a RunGrid sweep: the axes, the fixed topology
// every cell shares, replication, and parallelism. Every cell is an
// independent virtual-time simulation with its own seed derived from Seed
// and the cell's index, so the merged results are bit-identical no matter
// how many workers ran them or in what order.
type GridConfig struct {
	Axes GridAxes

	// Replicas and Threads shape the serving cluster (fan-out cells use
	// them for the front tier). Defaults: 4 replicas, 1 thread.
	Replicas int
	Threads  int
	// ShardReplicas sizes the shard tier of fan-out cells (default 8).
	ShardReplicas int
	// Requests and Warmup are per-cell measured and discarded request
	// counts (defaults 400 and 10%).
	Requests int
	Warmup   int
	// Reps runs each axis tuple this many times with distinct derived
	// seeds (default 1); replication is what turns a grid cell into a
	// confidence interval instead of a point estimate.
	Reps int
	// Seed is the root seed every per-cell seed is split from (default 1).
	Seed int64
	// Workers caps the worker goroutines (default GOMAXPROCS).
	Workers int
	// ServiceMean is the mean of the synthetic exponential service-time
	// distribution shared by every cell (default 1ms). One fixed sample
	// set is drawn from the root seed, so cells differ only in their axes
	// and per-cell seed.
	ServiceMean time.Duration
	// Window is the windowed-accounting width passed to every cell (zero
	// enables windows automatically for time-varying shapes).
	Window time.Duration
}

// gridApp labels grid cells in results. The simulated path never
// instantiates the application when ServiceSamples are supplied, but the
// name must still resolve in the app registry.
const gridApp = "masstree"

// serviceSampleCount is the size of the shared synthetic service-time
// sample set cells resample from.
const serviceSampleCount = 512

func (c GridConfig) normalize() GridConfig {
	if len(c.Axes.Policies) == 0 {
		c.Axes.Policies = []string{"leastq"}
	}
	if len(c.Axes.Shapes) == 0 {
		c.Axes.Shapes = []tailbench.LoadShape{nil} // nil = constant at the derived QPS
	}
	if len(c.Axes.Controllers) == 0 {
		c.Axes.Controllers = []string{ControllerStatic}
	}
	if len(c.Axes.FanOuts) == 0 {
		c.Axes.FanOuts = []int{1}
	}
	if c.Replicas <= 0 {
		c.Replicas = 4
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.ShardReplicas <= 0 {
		c.ShardReplicas = 8
	}
	if c.Requests <= 0 {
		c.Requests = 400
	}
	if c.Warmup == 0 {
		c.Warmup = c.Requests / 10
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ServiceMean <= 0 {
		c.ServiceMean = time.Millisecond
	}
	return c
}

// SimReport is one grid cell's outcome — one JSONL row, in the spirit of
// the pacs_sweep runner's per-tuple verdict records.
type SimReport struct {
	// Cell is the flat cell index (tuple-major, rep-minor) and Rep the
	// replication index within the tuple. Seed is the cell's derived seed.
	Cell int
	Rep  int
	Seed int64

	Policy     string
	Shape      string
	ShapeSpec  string
	Controller string
	FanOut     int

	OfferedQPS  float64
	AchievedQPS float64
	Requests    uint64

	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	Max  time.Duration

	// PeakWindowP99 is the worst windowed p99 (zero when the cell ran
	// without windows) — the statistic SLO verdicts are taken against
	// under time-varying load.
	PeakWindowP99 time.Duration
	// PeakReplicas and ReplicaSeconds are the provisioning ledger (summed
	// across tiers for fan-out cells).
	PeakReplicas   int
	ReplicaSeconds float64
}

// GridResult is the merged outcome of a grid sweep, reports in cell order.
type GridResult struct {
	// Cells is the number of runs: tuples × reps.
	Cells   int
	Reports []SimReport
}

// cellSpec is one enumerated run before execution.
type cellSpec struct {
	idx        int
	rep        int
	seed       int64
	policy     string
	shape      tailbench.LoadShape
	controller string
	fanOut     int
}

// enumerate lists every cell in deterministic tuple-major order. The
// per-cell seed is split from the root seed by flat index, so a cell's RNG
// streams depend only on its coordinates — never on scheduling.
func enumerate(cfg GridConfig) []cellSpec {
	var cells []cellSpec
	idx := 0
	for _, pol := range cfg.Axes.Policies {
		for _, sh := range cfg.Axes.Shapes {
			for _, ctrl := range cfg.Axes.Controllers {
				for _, k := range cfg.Axes.FanOuts {
					for rep := 0; rep < cfg.Reps; rep++ {
						cells = append(cells, cellSpec{
							idx:        idx,
							rep:        rep,
							seed:       workload.SplitSeed(cfg.Seed, int64(idx)),
							policy:     pol,
							shape:      sh,
							controller: ctrl,
							fanOut:     k,
						})
						idx++
					}
				}
			}
		}
	}
	return cells
}

// RunGrid fans the configuration grid across Workers goroutines, each cell
// an independent deterministic simulation, and merges the per-cell reports
// in cell order. Because every cell's seed derives from the root seed and
// the cell index alone, the merged result is byte-for-byte identical
// whether the grid ran on one worker or sixteen.
func RunGrid(cfg GridConfig) (*GridResult, error) {
	cfg = cfg.normalize()
	samples := syntheticServiceTimes(cfg.Seed, cfg.ServiceMean)
	cells := enumerate(cfg)

	reports := make([]SimReport, len(cells))
	errs := make([]error, len(cells))
	work := make(chan int)
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				reports[i], errs[i] = runCell(cfg, cells[i], samples)
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return &GridResult{Cells: len(cells), Reports: reports}, nil
}

// syntheticServiceTimes draws the shared exponential service-time sample
// set from the root seed (stream 77, distinct from the engines' streams).
func syntheticServiceTimes(seed int64, mean time.Duration) []time.Duration {
	rng := workload.NewRand(workload.SplitSeed(seed, 77))
	out := make([]time.Duration, serviceSampleCount)
	for i := range out {
		out[i] = time.Duration(rng.ExpFloat64() * float64(mean))
	}
	return out
}

// cellQPS picks the constant arrival rate for cells whose shape axis is nil:
// 70% of the serving tier's nominal capacity.
func cellQPS(cfg GridConfig) float64 {
	return 0.7 * float64(cfg.Replicas*cfg.Threads) / cfg.ServiceMean.Seconds()
}

// autoscale builds the cell's controller spec, nil for static cells.
func autoscale(cfg GridConfig, controller string, replicas int) *tailbench.AutoscaleSpec {
	if controller == "" || controller == ControllerStatic {
		return nil
	}
	return &tailbench.AutoscaleSpec{
		Policy:      controller,
		MinReplicas: 1,
		MaxReplicas: 2 * replicas,
	}
}

func runCell(cfg GridConfig, cell cellSpec, samples []time.Duration) (SimReport, error) {
	rpt := SimReport{
		Cell:       cell.idx,
		Rep:        cell.rep,
		Seed:       cell.seed,
		Policy:     cell.policy,
		Controller: cell.controller,
		FanOut:     cell.fanOut,
	}
	if rpt.Controller == "" {
		rpt.Controller = ControllerStatic
	}
	if cell.fanOut <= 1 {
		res, err := tailbench.RunCluster(tailbench.ClusterSpec{
			App:            gridApp,
			Mode:           tailbench.ModeSimulated,
			Policy:         cell.policy,
			Replicas:       cfg.Replicas,
			Threads:        cfg.Threads,
			QPS:            cellQPS(cfg),
			Load:           cell.shape,
			Window:         cfg.Window,
			Requests:       cfg.Requests,
			Warmup:         cfg.Warmup,
			Seed:           cell.seed,
			ServiceSamples: samples,
			Autoscale:      autoscale(cfg, cell.controller, cfg.Replicas),
		})
		if err != nil {
			return rpt, fmt.Errorf("sweep: grid cell %d (%s): %w", cell.idx, cell.policy, err)
		}
		rpt.Shape, rpt.ShapeSpec = res.Shape, res.ShapeSpec
		rpt.OfferedQPS, rpt.AchievedQPS = res.OfferedQPS, res.AchievedQPS
		rpt.Requests = res.Requests
		rpt.Mean, rpt.P50, rpt.P95, rpt.P99, rpt.Max =
			res.Sojourn.Mean, res.Sojourn.P50, res.Sojourn.P95, res.Sojourn.P99, res.Sojourn.Max
		rpt.PeakWindowP99 = peakWindowP99(res.Windows)
		rpt.PeakReplicas = res.PeakReplicas
		rpt.ReplicaSeconds = res.ReplicaSeconds
		return rpt, nil
	}
	// Fan-out cell: a front tier fanning out into a shard tier; the
	// controller (if any) scales the shards, where the fan-in straggler
	// pressure lands.
	res, err := tailbench.RunPipeline(tailbench.PipelineSpec{
		Mode: tailbench.ModeSimulated,
		Tiers: []tailbench.TierSpec{
			{Name: "front", Cluster: tailbench.ClusterSpec{
				App: gridApp, Policy: cell.policy,
				Replicas: cfg.Replicas, Threads: cfg.Threads,
				ServiceSamples: samples,
			}},
			{Name: "shards", Cluster: tailbench.ClusterSpec{
				App: gridApp, Policy: cell.policy,
				Replicas: cfg.ShardReplicas, Threads: cfg.Threads,
				ServiceSamples: samples,
				Autoscale:      autoscale(cfg, cell.controller, cfg.ShardReplicas),
			}, FanOut: cell.fanOut},
		},
		QPS:      cellQPS(cfg) / float64(cell.fanOut),
		Load:     cell.shape,
		Window:   cfg.Window,
		Requests: cfg.Requests,
		Warmup:   cfg.Warmup,
		Seed:     cell.seed,
	})
	if err != nil {
		return rpt, fmt.Errorf("sweep: grid cell %d (%s k=%d): %w", cell.idx, cell.policy, cell.fanOut, err)
	}
	rpt.Shape, rpt.ShapeSpec = res.Shape, res.ShapeSpec
	rpt.OfferedQPS, rpt.AchievedQPS = res.OfferedQPS, res.AchievedQPS
	rpt.Requests = res.Requests
	rpt.Mean, rpt.P50, rpt.P95, rpt.P99, rpt.Max =
		res.Sojourn.Mean, res.Sojourn.P50, res.Sojourn.P95, res.Sojourn.P99, res.Sojourn.Max
	rpt.PeakWindowP99 = peakWindowP99(res.Windows)
	for _, tier := range res.Tiers {
		rpt.PeakReplicas += tier.PeakReplicas
		rpt.ReplicaSeconds += tier.ReplicaSeconds
	}
	return rpt, nil
}

func peakWindowP99(ws []tailbench.WindowStats) time.Duration {
	var peak time.Duration
	for _, w := range ws {
		if w.P99 > peak {
			peak = w.P99
		}
	}
	return peak
}

// WriteJSONL writes one SimReport JSON object per line, in cell order —
// the machine-readable merge whose bytes are independent of worker count.
func (g *GridResult) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range g.Reports {
		if err := enc.Encode(&g.Reports[i]); err != nil {
			return err
		}
	}
	return nil
}

// gridCSVHeader is the CSV column set, latencies in microseconds.
var gridCSVHeader = []string{
	"cell", "rep", "seed", "policy", "shape", "controller", "fanout",
	"offered_qps", "achieved_qps", "requests",
	"mean_us", "p50_us", "p95_us", "p99_us", "max_us",
	"peak_window_p99_us", "peak_replicas", "replica_seconds",
}

// WriteCSV writes the report table with a header row, in cell order.
func (g *GridResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(gridCSVHeader); err != nil {
		return err
	}
	us := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Microsecond), 'f', 1, 64)
	}
	for i := range g.Reports {
		r := &g.Reports[i]
		rec := []string{
			strconv.Itoa(r.Cell), strconv.Itoa(r.Rep), strconv.FormatInt(r.Seed, 10),
			r.Policy, r.Shape, r.Controller, strconv.Itoa(r.FanOut),
			strconv.FormatFloat(r.OfferedQPS, 'f', 2, 64),
			strconv.FormatFloat(r.AchievedQPS, 'f', 2, 64),
			strconv.FormatUint(r.Requests, 10),
			us(r.Mean), us(r.P50), us(r.P95), us(r.P99), us(r.Max),
			us(r.PeakWindowP99), strconv.Itoa(r.PeakReplicas),
			strconv.FormatFloat(r.ReplicaSeconds, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
