package sweep

import (
	"math/rand"
	"testing"
	"time"

	"tailbench"
)

// fanoutCal builds a deterministic synthetic calibration so the study runs
// without measuring a real application.
func fanoutCal(seed int64) *Calibration {
	r := rand.New(rand.NewSource(seed))
	samples := make([]time.Duration, 400)
	for i := range samples {
		if r.Float64() < 0.02 {
			samples[i] = time.Millisecond + time.Duration(r.Int63n(int64(2*time.Millisecond)))
		} else {
			samples[i] = 100*time.Microsecond + time.Duration(r.Int63n(int64(100*time.Microsecond)))
		}
	}
	return &Calibration{
		App:            "xapian",
		ServiceSamples: samples,
		SaturationQPS:  tailbench.SaturationQPS(samples, 1),
	}
}

func TestFanoutStudy(t *testing.T) {
	cal := fanoutCal(13)
	opts := Options{Requests: 3000, Warmup: 300, Seed: 2}
	points, err := FanoutStudy(FanoutStudySpec{
		App:          "xapian",
		Mode:         tailbench.ModeSimulated,
		Fanouts:      []int{1, 4, 8},
		Hedge:        &tailbench.HedgeSpec{}, // auto p95 budget per point
		Window:       -1,
		FrontSpeedup: 4,
	}, cal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	if points[0].Amplification != 1 {
		t.Errorf("k=1 amplification = %v, want 1", points[0].Amplification)
	}
	for i, p := range points {
		if p.ShardReplicas != p.K || p.FrontReplicas != 2 {
			t.Errorf("point %d: topology %d shards / %d front, want %d/2", i, p.ShardReplicas, p.FrontReplicas, p.K)
		}
		if p.P99 <= 0 || p.CriticalP99 < p.ShardP99 {
			t.Errorf("point %d: p99=%v critical=%v shard=%v", i, p.P99, p.CriticalP99, p.ShardP99)
		}
		if p.HedgeDelay <= 0 || p.HedgedP99 <= 0 {
			t.Errorf("point %d: hedged companion missing: %+v", i, p)
		}
		if i > 0 && p.Amplification <= points[i-1].Amplification {
			t.Errorf("point %d: amplification %v did not grow past %v", i, p.Amplification, points[i-1].Amplification)
		}
	}
	// The points must be deterministic given the calibration and options.
	again, err := FanoutStudy(FanoutStudySpec{
		App: "xapian", Mode: tailbench.ModeSimulated, Fanouts: []int{1, 4, 8},
		Hedge: &tailbench.HedgeSpec{}, Window: -1, FrontSpeedup: 4,
	}, cal, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if *points[i] != *again[i] {
			t.Errorf("point %d not reproducible:\n a: %+v\n b: %+v", i, points[i], again[i])
		}
	}
}

func TestFanoutStudyValidation(t *testing.T) {
	cal := fanoutCal(13)
	if _, err := FanoutStudy(FanoutStudySpec{App: "xapian", Mode: tailbench.ModeSimulated}, cal, Options{}); err == nil {
		t.Error("empty fan-out list accepted")
	}
	if _, err := FanoutStudy(FanoutStudySpec{App: "xapian", Mode: tailbench.ModeSimulated, Fanouts: []int{0}}, cal, Options{}); err == nil {
		t.Error("zero fan-out degree accepted")
	}
}
