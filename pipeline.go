package tailbench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/cluster"
	"tailbench/internal/pipeline"
)

// HedgeSpec is a per-edge hedging (request duplication) policy: a
// sub-request that has not completed within Delay of its dispatch is
// duplicated onto another replica of the same tier and the first response
// wins. The loser still runs to completion and consumes capacity — hedging
// buys tail latency with extra load, which is exactly the trade-off the
// pipeline harness lets you measure.
type HedgeSpec struct {
	// Delay is the hedging budget; a common choice is the tier's p95
	// sub-request sojourn ("hedge after the request is already slower than
	// 95% of its peers"). Must be positive.
	Delay time.Duration
	// RTTFloor anchors the budget on the edge's round-trip floor: the
	// effective delay becomes Delay plus the edge's synthetic RTT plus the
	// smallest wire time observed on any completed copy, so a networked
	// edge never hedges inside time the network costs every request — a
	// constant budget tuned for an in-process edge fires uselessly early
	// once an RTT sits under it. Live path only; the simulated path has no
	// wire time and charges no synthetic RTT, so there the budget stays
	// Delay as configured. CLI spec: "rtt-floor+<duration>".
	RTTFloor bool
}

// EdgeSpec selects the transport of one tier's inbound edge, overriding the
// pipeline-wide default set by PipelineSpec.Mode. An edge's transport
// decides how sub-requests reach the tier's replicas on the live path:
// ModeIntegrated hands them to per-replica worker pools in-process,
// ModeLoopback puts each replica behind its own NetServer with the edge's
// balancer staying client-side, and ModeNetworked additionally charges the
// synthetic one-way NetworkDelay per hop — each sub-request's tier-local
// sojourn gains one RTT and a root's end-to-end sojourn accumulates the RTTs
// along its critical path, while hedge budgets and fan-out timing run on the
// real clock (which already includes the true loopback wire time).
type EdgeSpec struct {
	// Mode is the edge's transport: ModeIntegrated, ModeLoopback, or
	// ModeNetworked.
	Mode Mode
	// NetworkDelay is the one-way synthetic delay of a ModeNetworked edge
	// (default 25µs).
	NetworkDelay time.Duration
}

// TierSpec describes one tier of a pipeline: the cluster serving it plus
// the inbound edge from the previous tier.
type TierSpec struct {
	// Name labels the tier in results (default "tier<i>").
	Name string
	// Cluster describes the tier's cluster, reusing ClusterSpec. The
	// honored fields are App, Policy, Replicas, Threads, Scale, Slowdowns,
	// Autoscale, QueueCap, Validate, CalibrationRequests, and
	// ServiceSamples; the run-level fields (Mode, QPS, Load, Window,
	// Requests, Warmup, Seed, KeepRaw) come from the PipelineSpec, which
	// drives every tier.
	Cluster ClusterSpec
	// FanOut is the number of sub-requests a request completing at the
	// previous tier spawns into this tier (default 1). The parent request
	// completes only when all of them have — fan-in waits for the slowest,
	// so end-to-end tail latency inherits the max of FanOut sojourns (the
	// "tail at scale" amplification). Must be 1 (or 0) on tier 0, which is
	// fed by the root arrival process.
	FanOut int
	// Hedge optionally hedges the inbound edge's sub-requests; nil disables
	// hedging. Must be nil on tier 0.
	Hedge *HedgeSpec
	// Edge overrides the inbound edge's transport (see EdgeSpec); nil
	// inherits the pipeline-wide default implied by PipelineSpec.Mode. Tier
	// 0's edge is the root dispatcher's hop into the front-end tier, so it
	// may carry a transport (unlike FanOut/Hedge, which require a previous
	// tier). Only meaningful on the live path: a simulated run rejects
	// networked edges, since the virtual-time model has no network stack.
	Edge *EdgeSpec
}

// PipelineSpec describes one multi-tier measurement: a chain of clusters in
// which a root request traverses every tier via fan-out/fan-in edges, and
// the recorded sojourn of a root is its end-to-end span across tiers.
type PipelineSpec struct {
	// Mode selects the execution path and the default edge transport:
	// ModeIntegrated (real replica servers per tier, in-process dispatch),
	// ModeLoopback (live, every tier's replicas behind their own NetServers
	// with client-side balancing), ModeNetworked (loopback plus the
	// synthetic per-hop NIC/switch delay), or ModeSimulated (calibrated
	// virtual-time simulation — deterministic per seed, in-process edges
	// only). Individual edges override the live default via TierSpec.Edge.
	Mode Mode
	// Tiers is the chain, front-end first. At least one tier is required.
	Tiers []TierSpec
	// QPS is the root arrival rate; 0 means saturation. Shorthand for
	// Load: Constant(QPS); ignored when Load is set.
	QPS float64
	// Load is the root arrival process; nil means Constant(QPS).
	Load LoadShape
	// Window is the windowed-accounting width (zero = automatic for
	// time-varying shapes, negative = disabled).
	Window time.Duration
	// Requests is the number of measured root requests (default 1000).
	Requests int
	// Warmup is the number of discarded warmup roots (0 = 10% of Requests,
	// negative = none), together with their entire fan-out trees.
	Warmup int
	// NetworkDelay is the default one-way synthetic delay of networked
	// edges (default 25µs); TierSpec.Edge overrides it per edge. Ignored
	// unless an edge is networked.
	NetworkDelay time.Duration
	// Seed makes the run reproducible (default 1).
	Seed int64
	// KeepRaw retains every end-to-end sojourn sample in the result.
	KeepRaw bool
	// Timeout bounds an integrated (live) run; zero derives one from the
	// arrival horizon plus per-tier drain slack. A run that overruns it
	// drains its in-flight work, then fails with an error satisfying
	// PipelineTimedOut (unless the drain completed the run after all).
	Timeout time.Duration
	// Trace enables request-level tracing and tail attribution: each
	// measured root records its full fan-out/fan-in/hedge span tree, and the
	// report decomposes the retained tails into queueing, service, network,
	// straggler, and hedge components (see TraceSpec). Nil keeps tracing off
	// and the dispatch hot paths allocation-free.
	Trace *TraceSpec
	// Metrics, when non-nil, receives live per-tier counters and latency
	// histograms as the run progresses (live modes only); results are
	// identical with or without it.
	Metrics *MetricsRegistry
}

// TierResult is the per-tier breakdown of a pipeline run.
type TierResult struct {
	// Name, App, Policy, Replicas, and Threads identify the tier.
	Name     string
	App      string
	Policy   string
	Replicas int
	Threads  int
	// ThreadsPer echoes the tier's heterogeneous per-slot thread assignment
	// when one was configured (live path).
	ThreadsPer []int `json:",omitempty"`
	// FanOut is the inbound edge's fan-out degree (1 for tier 0).
	FanOut int
	// Transport names the inbound edge's transport on the live path
	// ("inprocess", "loopback", "networked"); empty for simulated runs.
	// NetworkDelay is a networked edge's one-way synthetic delay.
	Transport    string        `json:",omitempty"`
	NetworkDelay time.Duration `json:",omitempty"`
	// HedgeDelay is the inbound edge's hedging budget (0 = no hedging);
	// HedgesIssued counts duplicated sub-requests and HedgeWins how many
	// duplicates beat their original.
	HedgeDelay   time.Duration `json:",omitempty"`
	HedgesIssued uint64        `json:",omitempty"`
	HedgeWins    uint64        `json:",omitempty"`
	// OfferedQPS is the tier's nominal sub-request rate (root rate times
	// the fan-out multiplier up the chain; hedge duplicates not included).
	OfferedQPS float64
	// Requests counts measured sub-requests; Errors counts failed ones.
	Requests uint64
	Errors   uint64
	// Queue, Service, and Sojourn summarize tier-local sub-request latency
	// (dispatch into the tier until first completed copy).
	Queue   LatencyStats
	Service LatencyStats
	Sojourn LatencyStats
	// Critical summarizes, per measured root, the slowest of the root's
	// sub-requests at this tier — the straggler that actually gated the
	// root. Critical.P99 over Sojourn.P99 is the edge's tail-amplification
	// factor.
	Critical LatencyStats
	// Windows is the tier's windowed series, binned by sub-request dispatch
	// offset.
	Windows []WindowStats `json:",omitempty"`
	// Controller fields and the provisioning cost ledger mirror
	// ClusterResult.
	Controller      string        `json:",omitempty"`
	MinReplicas     int           `json:",omitempty"`
	MaxReplicas     int           `json:",omitempty"`
	ControlInterval time.Duration `json:",omitempty"`
	PeakReplicas    int
	ReplicaSeconds  float64
	ScalingEvents   []ScalingEvent `json:",omitempty"`
	// PerReplica is the tier's per-replica breakdown, indexed by stable
	// replica ID.
	PerReplica []ReplicaResult
}

// PipelineResult is the outcome of a pipeline measurement.
type PipelineResult struct {
	// Label names the topology, e.g. "xapian > 16*masstree".
	Label string
	Mode  Mode
	// Shape names the root arrival process and ShapeSpec its canonical
	// parameter encoding, re-parseable with ParseLoadShape.
	Shape     string `json:",omitempty"`
	ShapeSpec string `json:",omitempty"`
	// OfferedQPS is the configured root arrival rate; AchievedQPS the
	// measured root completion rate.
	OfferedQPS  float64
	AchievedQPS float64
	// Requests and Errors count measured and failed root requests.
	Requests uint64
	Errors   uint64
	// Sojourn summarizes end-to-end root latency: from the root's scheduled
	// arrival until its whole fan-out tree completed.
	Sojourn    LatencyStats
	SojournCDF []CDFPoint
	// SojournSamples is present when KeepRaw was set (root arrival order).
	SojournSamples []time.Duration `json:",omitempty"`
	// Windows is the end-to-end windowed series, binned by root arrival
	// offset.
	Windows []WindowStats `json:",omitempty"`
	Elapsed time.Duration
	// Tiers is the per-tier breakdown, front-end first.
	Tiers []TierResult
	// Trace is the tail-attribution report when tracing was enabled — for
	// fan-out pipelines the place the straggler (max-of-k) component of the
	// end-to-end tail becomes visible.
	Trace *TraceReport `json:",omitempty"`
}

// String renders a one-line summary.
func (r *PipelineResult) String() string {
	return fmt.Sprintf("%s [pipeline %d tiers, %s] qps=%.1f p95=%v p99=%v n=%d err=%d",
		r.Label, len(r.Tiers), r.Mode, r.OfferedQPS,
		r.Sojourn.P95.Round(time.Microsecond), r.Sojourn.P99.Round(time.Microsecond),
		r.Requests, r.Errors)
}

// WriteTierTable renders the per-tier breakdown as an aligned text table
// (one row per tier: fan-out, offered load, tier-local and critical-path
// tails, hedging ledger). Both the tailbench CLI and tailbench-report use
// it so the live and replayed views render identically.
func (r *PipelineResult) WriteTierTable(w io.Writer) {
	fmt.Fprintf(w, "%-10s %-10s %-10s %-6s %-10s %-12s %-12s %-12s %-10s %s\n",
		"tier", "app", "edge", "fanout", "offered", "p95", "p99", "crit_p99", "hedges", "hedge_wins")
	for _, t := range r.Tiers {
		hedges, wins := "-", "-"
		if t.HedgeDelay > 0 {
			hedges = fmt.Sprintf("%d", t.HedgesIssued)
			wins = fmt.Sprintf("%d", t.HedgeWins)
		}
		edge := t.Transport
		if edge == "" {
			edge = "-"
		}
		fmt.Fprintf(w, "%-10s %-10s %-10s %-6d %-10.1f %-12v %-12v %-12v %-10s %s\n",
			t.Name, t.App, edge, t.FanOut, t.OfferedQPS,
			t.Sojourn.P95.Round(time.Microsecond), t.Sojourn.P99.Round(time.Microsecond),
			t.Critical.P99.Round(time.Microsecond), hedges, wins)
	}
}

// ErrPipelineMode is returned for pipeline modes that are not supported.
type ErrPipelineMode struct{ Mode Mode }

// Error implements error.
func (e ErrPipelineMode) Error() string {
	return fmt.Sprintf("tailbench: pipeline runs support integrated, loopback, networked, and simulated modes, not %s", e.Mode)
}

// normalizePipeline validates the spec shape and resolves per-tier cluster
// defaults.
func normalizePipeline(spec PipelineSpec) (PipelineSpec, error) {
	if spec.Requests < 0 {
		return spec, fmt.Errorf("tailbench: PipelineSpec.Requests must not be negative (got %d)", spec.Requests)
	}
	if len(spec.Tiers) == 0 {
		return spec, fmt.Errorf("tailbench: PipelineSpec.Tiers must name at least one tier")
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	tiers := make([]TierSpec, len(spec.Tiers))
	copy(tiers, spec.Tiers)
	spec.Tiers = tiers
	for i := range spec.Tiers {
		t := &spec.Tiers[i]
		if t.Name == "" {
			t.Name = fmt.Sprintf("tier%d", i)
		}
		if i == 0 {
			if t.FanOut > 1 {
				return spec, fmt.Errorf("tailbench: tier 0 is fed by the root arrival process and cannot have FanOut %d", t.FanOut)
			}
			if t.Hedge != nil {
				return spec, fmt.Errorf("tailbench: tier 0 has no inbound edge to hedge")
			}
		}
		if t.FanOut < 0 {
			return spec, fmt.Errorf("tailbench: tier %d FanOut must not be negative (got %d)", i, t.FanOut)
		}
		if t.Hedge != nil && t.Hedge.Delay <= 0 {
			return spec, fmt.Errorf("tailbench: tier %d Hedge.Delay must be positive (got %v)", i, t.Hedge.Delay)
		}
		if t.Edge != nil {
			if _, ok := transportForMode(t.Edge.Mode); !ok {
				return spec, fmt.Errorf("tailbench: tier %d Edge.Mode must be integrated, loopback, or networked (got %s)", i, t.Edge.Mode)
			}
			if t.Edge.NetworkDelay < 0 {
				return spec, fmt.Errorf("tailbench: tier %d Edge.NetworkDelay must not be negative (got %v)", i, t.Edge.NetworkDelay)
			}
			if spec.Mode == ModeSimulated && t.Edge.Mode != ModeIntegrated {
				return spec, fmt.Errorf("tailbench: tier %d: %s tier edges are a live-path feature; the virtual-time model has no network stack", i, t.Edge.Mode)
			}
		}
		t.Cluster.Seed = spec.Seed
		t.Cluster = t.Cluster.normalize()
		if _, err := factoryFor(t.Cluster.App); err != nil {
			return spec, err
		}
		if t.Cluster.Autoscale != nil {
			if _, err := cluster.NewControlLoop(*t.Cluster.autoscaleConfig(), t.Cluster.Replicas, t.Cluster.Autoscale.MaxReplicas); err != nil {
				return spec, err
			}
		}
		if err := validateSlowdowns(t.Cluster.Slowdowns, t.Cluster.poolSize(), t.Cluster.Autoscale != nil); err != nil {
			return spec, err
		}
		if err := validateThreadsPer(t.Cluster.ThreadsPerReplica, t.Cluster.poolSize(), t.Cluster.Autoscale != nil); err != nil {
			return spec, err
		}
	}
	return spec, nil
}

// transportForMode maps a live execution mode to the internal transport kind
// name it implies (the default for every edge of a pipeline run, and the
// cluster dispatch path). Reports false for modes that are not transports
// (simulated, unknown).
func transportForMode(m Mode) (string, bool) {
	switch m {
	case ModeIntegrated:
		return cluster.TransportInProcess, true
	case ModeLoopback:
		return cluster.TransportLoopback, true
	case ModeNetworked:
		return cluster.TransportNetworked, true
	default:
		return "", false
	}
}

// tierConfig builds the internal tier configuration shared by both paths.
// defaultTransport and defaultDelay are the pipeline-wide edge transport and
// networked-edge delay implied by the run mode, which TierSpec.Edge
// overrides.
func (t TierSpec) tierConfig(defaultTransport string, defaultDelay time.Duration) pipeline.TierConfig {
	cs := t.Cluster
	hedge := time.Duration(0)
	hedgeRTTFloor := false
	if t.Hedge != nil {
		hedge = t.Hedge.Delay
		hedgeRTTFloor = t.Hedge.RTTFloor
	}
	transport := defaultTransport
	netDelay := defaultDelay
	if t.Edge != nil {
		transport, _ = transportForMode(t.Edge.Mode)
		if t.Edge.NetworkDelay > 0 {
			netDelay = t.Edge.NetworkDelay
		}
	}
	return pipeline.TierConfig{
		Name:          t.Name,
		App:           cs.App,
		Policy:        cs.Policy,
		Threads:       cs.Threads,
		ThreadsPer:    cs.ThreadsPerReplica,
		Replicas:      cs.Replicas,
		FanOut:        t.FanOut,
		HedgeDelay:    hedge,
		HedgeRTTFloor: hedgeRTTFloor,
		Autoscale:     cs.autoscaleConfig(),
		Transport:     transport,
		NetDelay:      netDelay,
	}
}

// RunPipeline executes one multi-tier measurement according to the spec.
func RunPipeline(spec PipelineSpec) (*PipelineResult, error) {
	spec, err := normalizePipeline(spec)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.Config{
		QPS:            spec.QPS,
		Load:           spec.Load,
		Window:         spec.Window,
		Requests:       spec.Requests,
		WarmupRequests: spec.Warmup,
		Seed:           spec.Seed,
		KeepRaw:        spec.KeepRaw,
		Timeout:        spec.Timeout,
		Trace:          spec.Trace.recorder(),
		Metrics:        spec.Metrics,
	}
	switch spec.Mode {
	case ModeSimulated:
		return runPipelineSimulated(spec, cfg)
	case ModeIntegrated, ModeLoopback, ModeNetworked:
		transport, _ := transportForMode(spec.Mode)
		return runPipelineLive(spec, cfg, transport)
	default:
		return nil, ErrPipelineMode{Mode: spec.Mode}
	}
}

// runPipelineSimulated calibrates each tier's service-time distribution
// (once per distinct application/scale, unless the tier supplies
// ServiceSamples) and runs the virtual-time engine.
func runPipelineSimulated(spec PipelineSpec, cfg pipeline.Config) (*PipelineResult, error) {
	type calKey struct {
		app      string
		scale    float64
		requests int
	}
	calibrated := map[calKey][]time.Duration{}
	for _, t := range spec.Tiers {
		cs := t.Cluster
		samples := cs.ServiceSamples
		if len(samples) == 0 {
			calReq := cs.CalibrationRequests
			if calReq <= 0 {
				calReq = 300
			}
			key := calKey{app: cs.App, scale: cs.Scale, requests: calReq}
			if cached, ok := calibrated[key]; ok {
				samples = cached
			} else {
				var err error
				samples, err = MeasureServiceTimes(cs.App, cs.Scale, spec.Seed, calReq)
				if err != nil {
					return nil, fmt.Errorf("tailbench: calibrating %s: %w", cs.App, err)
				}
				calibrated[key] = samples
			}
		}
		tc := t.tierConfig(cluster.TransportInProcess, 0)
		tc.SimReplicas = make([]cluster.SimReplica, cs.poolSize())
		for r := range tc.SimReplicas {
			tc.SimReplicas[r] = cluster.SimReplica{Service: cluster.EmpiricalService{Samples: samples}}
			if r < len(cs.Slowdowns) {
				tc.SimReplicas[r].Slowdown = cs.Slowdowns[r]
			}
			if r < len(cs.ThreadsPerReplica) {
				tc.SimReplicas[r].Threads = cs.ThreadsPerReplica[r]
			}
		}
		cfg.Tiers = append(cfg.Tiers, tc)
	}
	res, err := pipeline.Simulate(cfg)
	if err != nil {
		return nil, err
	}
	return fromPipelineResult(spec, res), nil
}

// runPipelineLive builds every tier's real replica server pool and drives
// the live goroutine engine; defaultTransport is the edge transport implied
// by the run mode, overridden per tier by TierSpec.Edge.
func runPipelineLive(spec PipelineSpec, cfg pipeline.Config, defaultTransport string) (*PipelineResult, error) {
	var servers []app.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i, t := range spec.Tiers {
		cs := t.Cluster
		f, err := factoryFor(cs.App)
		if err != nil {
			return nil, err
		}
		appCfg := app.Config{Threads: cs.Threads, Scale: cs.Scale, Seed: spec.Seed}.Normalize()
		pool := make([]app.Server, 0, cs.poolSize())
		for r := 0; r < cs.poolSize(); r++ {
			server, err := f.NewServer(appCfg)
			if err != nil {
				return nil, fmt.Errorf("tailbench: building %s tier %d replica %d: %w", cs.App, i, r, err)
			}
			pool = append(pool, server)
			servers = append(servers, server)
		}
		tc := t.tierConfig(defaultTransport, spec.NetworkDelay)
		tc.Servers = pool
		tc.NewClient = func(seed int64) (app.Client, error) { return f.NewClient(appCfg, seed) }
		tc.Validate = cs.Validate
		tc.QueueCap = cs.QueueCap
		tc.Slowdowns = cs.Slowdowns
		cfg.Tiers = append(cfg.Tiers, tc)
	}
	res, err := pipeline.Run(cfg)
	if err != nil {
		return nil, err
	}
	return fromPipelineResult(spec, res), nil
}

// fromPipelineResult converts the internal pipeline result to the public
// type.
func fromPipelineResult(spec PipelineSpec, res *pipeline.Result) *PipelineResult {
	out := &PipelineResult{
		Label:          res.Label,
		Mode:           spec.Mode,
		Shape:          res.Shape,
		ShapeSpec:      res.ShapeSpec,
		OfferedQPS:     res.OfferedQPS,
		AchievedQPS:    res.AchievedQPS,
		Requests:       res.Requests,
		Errors:         res.Errors,
		Sojourn:        fromSummary(res.Sojourn),
		SojournSamples: res.SojournSamples,
		Windows:        fromWindowStats(res.Windows),
		Elapsed:        res.Elapsed,
		Trace:          res.Trace,
	}
	for _, p := range res.SojournCDF {
		out.SojournCDF = append(out.SojournCDF, CDFPoint{Value: p.Value, Cumulative: p.Cumulative})
	}
	for _, tier := range res.Tiers {
		tr := TierResult{
			Name:            tier.Name,
			App:             tier.App,
			Policy:          tier.Policy,
			Replicas:        tier.Replicas,
			Threads:         tier.Threads,
			ThreadsPer:      tier.ThreadsPer,
			FanOut:          tier.FanOut,
			Transport:       tier.Transport,
			NetworkDelay:    tier.NetDelay,
			HedgeDelay:      tier.HedgeDelay,
			HedgesIssued:    tier.HedgesIssued,
			HedgeWins:       tier.HedgeWins,
			OfferedQPS:      tier.OfferedQPS,
			Requests:        tier.Requests,
			Errors:          tier.Errors,
			Queue:           fromSummary(tier.Queue),
			Service:         fromSummary(tier.Service),
			Sojourn:         fromSummary(tier.Sojourn),
			Critical:        fromSummary(tier.Critical),
			Windows:         fromWindowStats(tier.Windows),
			Controller:      tier.Controller,
			MinReplicas:     tier.MinReplicas,
			MaxReplicas:     tier.MaxReplicas,
			ControlInterval: tier.ControlInterval,
			PeakReplicas:    tier.PeakReplicas,
			ReplicaSeconds:  tier.ReplicaSeconds,
		}
		for _, ev := range tier.ScalingEvents {
			tr.ScalingEvents = append(tr.ScalingEvents, ScalingEvent{At: ev.At, From: ev.From, To: ev.To})
		}
		for _, rs := range tier.PerReplica {
			tr.PerReplica = append(tr.PerReplica, ReplicaResult{
				Index:          rs.Index,
				Slot:           rs.Slot,
				State:          rs.State,
				ProvisionedAt:  rs.ProvisionedAt,
				ActiveAt:       rs.ActiveAt,
				RetiredAt:      rs.RetiredAt,
				Lifetime:       rs.Lifetime,
				Threads:        rs.Threads,
				Slowdown:       rs.Slowdown,
				Dispatched:     rs.Dispatched,
				Requests:       rs.Requests,
				Errors:         rs.Errors,
				AchievedQPS:    rs.AchievedQPS,
				Queue:          fromSummary(rs.Queue),
				Service:        fromSummary(rs.Service),
				Sojourn:        fromSummary(rs.Sojourn),
				MeanQueueDepth: rs.MeanQueueDepth,
				MaxQueueDepth:  rs.MaxQueueDepth,
			})
		}
		out.Tiers = append(out.Tiers, tr)
	}
	return out
}

// PipelineTimedOut reports whether an integrated pipeline run failed
// because not every root request completed within the timeout.
func PipelineTimedOut(err error) bool { return errors.Is(err, pipeline.ErrTimedOut) }
