// Command tailvet is the repo's static-analysis gate: a vet tool running
// the internal/lint analyzer suite, which enforces the harness's
// determinism (simtime, seedrng), zero-overhead observability (nilguard),
// concurrency (atomicmix), and unit-discipline (nsunits) invariants.
//
// It speaks the go vet tool protocol, so the canonical invocation is
//
//	go vet -vettool=$(which tailvet) ./...
//
// (or `make lint`, which builds the tool and runs exactly that). Run
// standalone with package patterns — `tailvet ./...` — and it re-executes
// itself through go vet so the toolchain supplies the build graph and
// export data. Individual analyzers can be disabled with -<name>=false,
// and single findings suppressed with a `//lint:allow <name> <reason>`
// comment; see `tailvet help` for the analyzer list.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"strings"

	"tailbench/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tailvet", flag.ContinueOnError)
	vFlag := fs.String("V", "", "print version and exit (go tool protocol)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags as JSON and exit (go vet protocol)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON")
	enabled := make(map[string]*bool)
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	fs.Usage = func() { usage(fs) }
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *vFlag != "":
		// cmd/go fingerprints the tool for its build cache; hashing the
		// binary means a rebuilt tailvet invalidates stale vet results.
		fmt.Printf("tailvet version %s\n", selfHash())
		return 0
	case *flagsFlag:
		return printFlagDefs()
	}

	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return runUnit(fs.Arg(0), analyzersEnabled(enabled), *jsonFlag)
	}
	if fs.NArg() >= 1 && fs.Arg(0) == "help" {
		usage(fs)
		return 0
	}
	return runStandalone(fs.Args(), enabled)
}

// runUnit is the vet tool protocol: analyze one package unit described
// by a cfg file, print findings, exit 2 if there were any.
func runUnit(cfgPath string, analyzers []*lint.Analyzer, asJSON bool) int {
	cfg, err := lint.ReadUnitConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailvet:", err)
		return 1
	}
	if err := cfg.WriteVetx(); err != nil {
		fmt.Fprintln(os.Stderr, "tailvet:", err)
		return 1
	}
	if cfg.VetxOnly {
		// Dependency-only run: the driver wants facts, and tailvet has
		// none to compute.
		return 0
	}
	diags, fset, err := lint.AnalyzeUnit(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "tailvet:", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	if asJSON {
		printJSON(cfg.ImportPath, diags, fset)
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

// runStandalone re-executes through `go vet -vettool=self` so the go
// command builds dependencies and supplies export data.
func runStandalone(patterns []string, enabled map[string]*bool) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailvet:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"vet", "-vettool=" + self}
	for name, on := range enabled {
		if !*on {
			args = append(args, fmt.Sprintf("-%s=false", name))
		}
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "tailvet:", err)
		return 1
	}
	return 0
}

func analyzersEnabled(enabled map[string]*bool) []*lint.Analyzer {
	var out []*lint.Analyzer
	for _, a := range lint.Analyzers() {
		if *enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// printFlagDefs implements the `-flags` handshake: go vet asks the tool
// which flags it accepts before forwarding any.
func printFlagDefs() int {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []flagDef{{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"}}
	for _, a := range lint.Analyzers() {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailvet:", err)
		return 1
	}
	fmt.Println(string(out))
	return 0
}

// printJSON mirrors the unitchecker JSON diagnostic shape:
// {pkg: {analyzer: [{posn, message}]}}.
func printJSON(pkg string, diags []lint.Diagnostic, fset *token.FileSet) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{pkg: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "tailvet:", err)
	}
}

func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintf(os.Stderr, `tailvet enforces tailbench's determinism, zero-overhead, and concurrency
invariants as static checks.

Usage:
  tailvet [packages]          analyze packages via go vet (default ./...)
  go vet -vettool=tailvet ./...   same, driven by the go command

Analyzers (disable with -<name>=false):
`)
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, `
Suppress a single finding with a trailing or preceding comment:
  //lint:allow <analyzer> <reason>
A directive before the package clause suppresses the analyzer for the
whole file. The reason is required.
`)
}
