// Command tailbench-report prints the suite's reference information: the
// applications and their domains (Table I columns), the simulated system
// description (Table II), and per-application calibration summaries.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tailbench"
	"tailbench/sweep"
)

func main() {
	var (
		calibrate = flag.Bool("calibrate", false, "measure per-application service-time summaries (slower)")
		scale     = flag.Float64("scale", 0.05, "application dataset scale used for calibration")
	)
	flag.Parse()

	fmt.Println("TailBench-Go application suite")
	fmt.Println()
	fmt.Printf("%-10s %s\n", "app", "domain")
	for _, app := range tailbench.Apps() {
		fmt.Printf("%-10s %s\n", app, sweep.Domain(app))
	}
	fmt.Println()
	fmt.Println("Simulated system (Table II):", tailbench.SystemDescription())

	if !*calibrate {
		return
	}
	fmt.Println()
	fmt.Printf("%-10s %-14s %-14s %-14s %s\n", "app", "mean_service", "p95_service", "p99_service", "saturation_qps(1 thread)")
	for _, app := range tailbench.Apps() {
		opts := sweep.Quick()
		opts.Scale = *scale
		cal, err := sweep.Calibrate(app, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tailbench-report:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %-14v %-14v %-14v %.0f\n", app,
			cal.Service.Mean.Round(time.Microsecond),
			cal.Service.P95.Round(time.Microsecond),
			cal.Service.P99.Round(time.Microsecond),
			cal.SaturationQPS)
	}
}
