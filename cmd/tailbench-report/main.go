// Command tailbench-report prints the suite's reference information: the
// applications and their domains (Table I columns), the simulated system
// description (Table II), and per-application calibration summaries. With
// -input it instead renders a saved measurement result (as written by
// `tailbench ... -json` or `tailbench cluster ... -json`), including the
// per-replica breakdown when the result came from a cluster run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tailbench"
	"tailbench/sweep"
)

func main() {
	var (
		calibrate = flag.Bool("calibrate", false, "measure per-application service-time summaries (slower)")
		scale     = flag.Float64("scale", 0.05, "application dataset scale used for calibration")
		input     = flag.String("input", "", "render a saved JSON result instead of the reference report")
	)
	flag.Parse()

	if *input != "" {
		if err := reportFromFile(*input); err != nil {
			fmt.Fprintln(os.Stderr, "tailbench-report:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("TailBench-Go application suite")
	fmt.Println()
	fmt.Printf("%-10s %s\n", "app", "domain")
	for _, app := range tailbench.Apps() {
		fmt.Printf("%-10s %s\n", app, sweep.Domain(app))
	}
	fmt.Println()
	fmt.Println("Simulated system (Table II):", tailbench.SystemDescription())

	if !*calibrate {
		return
	}
	fmt.Println()
	fmt.Printf("%-10s %-14s %-14s %-14s %s\n", "app", "mean_service", "p95_service", "p99_service", "saturation_qps(1 thread)")
	for _, app := range tailbench.Apps() {
		opts := sweep.Quick()
		opts.Scale = *scale
		cal, err := sweep.Calibrate(app, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tailbench-report:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %-14v %-14v %-14v %.0f\n", app,
			cal.Service.Mean.Round(time.Microsecond),
			cal.Service.P95.Round(time.Microsecond),
			cal.Service.P99.Round(time.Microsecond),
			cal.SaturationQPS)
	}
}

// reportFromFile renders a saved JSON result. Pipeline results (identified
// by their tier chain) get the per-tier rendering, cluster results
// (identified by their per-replica breakdown) the full replica table, and
// single-server results the aggregate summary.
func reportFromFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var pipe tailbench.PipelineResult
	if err := json.Unmarshal(data, &pipe); err == nil && len(pipe.Tiers) > 0 {
		printPipelineReport(&pipe)
		return nil
	}
	var cluster tailbench.ClusterResult
	if err := json.Unmarshal(data, &cluster); err == nil && cluster.Policy != "" && len(cluster.PerReplica) > 0 {
		printClusterReport(&cluster)
		return nil
	}
	var single tailbench.Result
	if err := json.Unmarshal(data, &single); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	fmt.Println(single.String())
	if single.Shape != "" && single.Shape != "constant" {
		fmt.Printf("load shape: %s\n", single.ShapeSpec)
	}
	if len(single.Windows) > 0 {
		fmt.Println()
		tailbench.WriteWindowTable(os.Stdout, single.Windows)
	}
	printAttribution(single.Trace)
	return nil
}

func printPipelineReport(res *tailbench.PipelineResult) {
	fmt.Printf("%s: %d-tier pipeline, %s mode\n", res.Label, len(res.Tiers), res.Mode)
	if res.Shape != "" && res.Shape != "constant" {
		fmt.Printf("load shape: %s\n", res.ShapeSpec)
	}
	fmt.Printf("offered %.1f root qps, achieved %.1f qps, %d requests (%d errors)\n",
		res.OfferedQPS, res.AchievedQPS, res.Requests, res.Errors)
	s := res.Sojourn
	fmt.Printf("end-to-end sojourn: mean=%v p50=%v p95=%v p99=%v max=%v\n",
		s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	if len(res.Windows) > 0 {
		fmt.Println()
		tailbench.WriteWindowTable(os.Stdout, res.Windows)
	}
	fmt.Println()
	res.WriteTierTable(os.Stdout)
	printHedgeLedger(res)
	for _, t := range res.Tiers {
		if t.Controller != "" {
			fmt.Printf("\n%s autoscale: %s [%d..%d], tick %v — peak %d replicas, %.1f replica-seconds, %d scaling events\n",
				t.Name, t.Controller, t.MinReplicas, t.MaxReplicas, t.ControlInterval,
				t.PeakReplicas, t.ReplicaSeconds, len(t.ScalingEvents))
		}
	}
	printAttribution(res.Trace)
}

// printHedgeLedger renders the hedging ledger of every hedged edge: how many
// duplicates the edge issued, how many won their race, and the extra-traffic
// fraction the tail improvement was bought with (duplicates over the tier's
// measured sub-requests — redundant hedge work is real capacity spent).
func printHedgeLedger(res *tailbench.PipelineResult) {
	printed := false
	for _, t := range res.Tiers {
		if t.HedgeDelay <= 0 {
			continue
		}
		if !printed {
			fmt.Println()
			fmt.Println("hedging ledger:")
			printed = true
		}
		extra, winRate := 0.0, 0.0
		if t.Requests > 0 {
			extra = float64(t.HedgesIssued) / float64(t.Requests)
		}
		if t.HedgesIssued > 0 {
			winRate = float64(t.HedgeWins) / float64(t.HedgesIssued)
		}
		fmt.Printf("  %s: budget %v — %d duplicates issued (%.1f%% extra traffic), %d won the race (%.1f%%)\n",
			t.Name, t.HedgeDelay, t.HedgesIssued, 100*extra, t.HedgeWins, 100*winRate)
	}
}

// printAttribution renders the tail-attribution report of a traced result.
func printAttribution(rep *tailbench.TraceReport) {
	if rep == nil || len(rep.Slowest) == 0 {
		return
	}
	fmt.Println()
	tailbench.WriteTraceAttribution(os.Stdout, rep)
}

func printClusterReport(res *tailbench.ClusterResult) {
	threads := fmt.Sprintf("%d threads each", res.Threads)
	if len(res.ThreadsPer) > 0 {
		threads = fmt.Sprintf("threads %v", res.ThreadsPer)
	}
	fmt.Printf("%s: %d-replica cluster (%s), %s balancing, %s mode\n",
		res.App, res.Replicas, threads, res.Policy, res.Mode)
	if res.Shape != "" && res.Shape != "constant" {
		fmt.Printf("load shape: %s\n", res.ShapeSpec)
	}
	if res.Controller != "" {
		fmt.Printf("autoscale: %s controller [%d..%d replicas], tick %v\n",
			res.Controller, res.MinReplicas, res.MaxReplicas, res.ControlInterval)
		fmt.Printf("elasticity: peak %d replicas, %.1f replica-seconds, %d scaling events\n",
			res.PeakReplicas, res.ReplicaSeconds, len(res.ScalingEvents))
	}
	fmt.Printf("offered %.1f qps, achieved %.1f qps, %d requests (%d errors)\n",
		res.OfferedQPS, res.AchievedQPS, res.Requests, res.Errors)
	fmt.Printf("sojourn: mean=%v p50=%v p95=%v p99=%v max=%v\n",
		res.Sojourn.Mean.Round(time.Microsecond), res.Sojourn.P50.Round(time.Microsecond),
		res.Sojourn.P95.Round(time.Microsecond), res.Sojourn.P99.Round(time.Microsecond),
		res.Sojourn.Max.Round(time.Microsecond))
	if len(res.Windows) > 0 {
		fmt.Println()
		tailbench.WriteWindowTable(os.Stdout, res.Windows)
	}
	fmt.Println()
	res.WriteReplicaTable(os.Stdout)
	printAttribution(res.Trace)
}
