// Command tailbench-grid fans a policy × shape × controller × fan-out
// configuration grid across parallel workers, every cell an independent
// deterministic simulation. Per-cell seeds derive from the root seed and
// the cell index alone, so the merged CSV/JSONL output is byte-identical
// whether the grid ran on one worker or sixteen — crank -workers with a
// clear conscience.
//
// Example: a 4-policy × 3-shape × 3-controller × 3-fan-out grid, 10 reps
// per tuple (1080 cells), on all cores:
//
//	tailbench-grid -policies random,roundrobin,leastq,jsq2 \
//	  -shapes 'const;diurnal:500,300,10s;spike:500,1500,5s,2s' \
//	  -controllers static,threshold,target-p95 -fanouts 1,8,16 \
//	  -reps 10 -csv grid.csv -jsonl grid.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"tailbench"
	"tailbench/sweep"
)

func main() {
	var (
		policies    = flag.String("policies", "leastq", "comma-separated balancer policies")
		shapes      = flag.String("shapes", "const", "semicolon-separated load shapes (\"const\" = steady arrivals at 70% capacity; others per tailbench.ParseLoadShape)")
		controllers = flag.String("controllers", "static", "comma-separated autoscaling controllers (\"static\" = fixed replica set)")
		fanouts     = flag.String("fanouts", "1", "comma-separated fan-out degrees (1 = single cluster, k>1 = front+shards pipeline)")
		replicas    = flag.Int("replicas", 4, "replicas in the serving cluster (front tier for fan-out cells)")
		shardRepl   = flag.Int("shard-replicas", 8, "replicas in the shard tier of fan-out cells")
		threads     = flag.Int("threads", 1, "threads per replica")
		requests    = flag.Int("requests", 400, "measured requests per cell")
		warmup      = flag.Int("warmup", 0, "warmup requests per cell (0 = 10% of requests, negative = none)")
		reps        = flag.Int("reps", 1, "replications per axis tuple, each with a distinct derived seed")
		seed        = flag.Int64("seed", 1, "root seed; per-cell seeds are split from it by cell index")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers (output is identical for any value)")
		svcMean     = flag.Duration("service-mean", time.Millisecond, "mean of the synthetic exponential service-time distribution")
		window      = flag.Duration("window", 0, "windowed latency accounting width (0 = automatic for time-varying shapes)")
		csvOut      = flag.String("csv", "", "write the report table as CSV to this file (\"-\" for stdout)")
		jsonlOut    = flag.String("jsonl", "", "write one SimReport JSON object per line to this file (\"-\" for stdout)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile (taken after the sweep) to this file")
	)
	flag.Parse()

	cfg := sweep.GridConfig{
		Axes: sweep.GridAxes{
			Policies:    splitList(*policies, ","),
			Controllers: splitList(*controllers, ","),
		},
		Replicas:      *replicas,
		ShardReplicas: *shardRepl,
		Threads:       *threads,
		Requests:      *requests,
		Warmup:        *warmup,
		Reps:          *reps,
		Seed:          *seed,
		Workers:       *workers,
		ServiceMean:   *svcMean,
		Window:        *window,
	}
	for _, spec := range splitList(*shapes, ";") {
		if spec == "const" {
			cfg.Axes.Shapes = append(cfg.Axes.Shapes, nil)
			continue
		}
		shape, err := tailbench.ParseLoadShape(spec)
		if err != nil {
			fatal(err)
		}
		cfg.Axes.Shapes = append(cfg.Axes.Shapes, shape)
	}
	for _, s := range splitList(*fanouts, ",") {
		k, err := strconv.Atoi(s)
		if err != nil || k < 1 {
			fatal(fmt.Errorf("bad fan-out %q", s))
		}
		cfg.Axes.FanOuts = append(cfg.Axes.FanOuts, k)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	start := time.Now() //lint:allow simtime CLI progress reporting, not simulation state
	res, err := sweep.RunGrid(cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start) //lint:allow simtime CLI progress reporting, not simulation state

	if *memProfile != "" {
		runtime.GC()
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	wrote := false
	if *csvOut != "" {
		if err := writeTo(*csvOut, res.WriteCSV); err != nil {
			fatal(err)
		}
		wrote = true
	}
	if *jsonlOut != "" {
		if err := writeTo(*jsonlOut, res.WriteJSONL); err != nil {
			fatal(err)
		}
		wrote = true
	}
	if !wrote {
		if err := res.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "tailbench-grid: %d cells in %v (%.0f cells/s, %d workers)\n",
		res.Cells, elapsed.Round(time.Millisecond), float64(res.Cells)/elapsed.Seconds(), cfg.Workers)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tailbench-grid:", err)
	os.Exit(1)
}

// splitList splits a separator-joined flag value, dropping empty tokens.
func splitList(s, sep string) []string {
	var out []string
	for _, tok := range strings.Split(s, sep) {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// writeTo streams write to the named file, or stdout for "-".
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
