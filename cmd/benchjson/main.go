// Command benchjson converts `go test -bench` output on stdin into a stable
// JSON document on stdout, so benchmark baselines can be committed to the
// repo (BENCH_sim.json) and diffed PR-over-PR instead of living only in CI
// logs. Usage:
//
//	go test -run '^$' -bench . ./internal/... | benchjson > BENCH_sim.json
//
// With -compare it becomes a regression gate instead: it diffs two such
// documents and exits nonzero when the new one regresses the old —
// throughput (events/s) dropping more than 10%, or allocations per
// operation growing at all (beyond 2% slack). -soft-throughput downgrades
// the throughput check to a warning for noisy shared runners, where
// allocs/op stays trustworthy but events/s does not:
//
//	benchjson -compare -soft-throughput BENCH_sim.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchLine is one benchmark result row.
type benchLine struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// doc is the committed artifact: environment header plus result rows, in
// input order.
type doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchLine `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two benchmark JSON files (old new) and exit nonzero on regression")
	softThroughput := flag.Bool("soft-throughput", false, "with -compare: report events/s regressions without failing (noisy runners)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := compareDocs(flag.Arg(0), flag.Arg(1), *softThroughput); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*doc, error) {
	out := &doc{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			row, err := parseBench(pkg, line)
			if err != nil {
				return nil, err
			}
			out.Benchmarks = append(out.Benchmarks, row)
		}
	}
	return out, sc.Err()
}

// parseBench parses one result row: name, iteration count, then
// value-unit pairs (ns/op first, extra b.ReportMetric units after).
func parseBench(pkg, line string) (benchLine, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchLine{}, fmt.Errorf("short benchmark line: %q", line)
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix so the committed name is machine-stable.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchLine{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	row := benchLine{Pkg: pkg, Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchLine{}, fmt.Errorf("value in %q: %w", line, err)
		}
		if f[i+1] == "ns/op" {
			row.NsPerOp = v
			continue
		}
		if row.Metrics == nil {
			row.Metrics = map[string]float64{}
		}
		row.Metrics[f[i+1]] = v
	}
	return row, nil
}
