package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// Regression thresholds. Throughput on a quiet machine is repeatable to a
// few percent, so 10% is a real regression; allocs/op is a deterministic
// count, so any growth beyond float-rounding slack means the hot path
// started allocating again — the property the engine's alloc-free design
// exists to protect.
const (
	throughputTolerance = 0.10
	allocsTolerance     = 0.02
)

// compareDocs diffs two benchjson documents and returns an error describing
// every regression of new relative to old. Rows are matched by pkg+name;
// rows present only in old fail (a benchmark silently vanishing is how
// regressions hide), rows present only in new are fine (new coverage).
func compareDocs(oldPath, newPath string, softThroughput bool) error {
	oldDoc, err := readDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := readDoc(newPath)
	if err != nil {
		return err
	}
	regressions, warnings := compareBenches(oldDoc, newDoc, softThroughput)
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "benchjson: warning:", w)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
		}
		return fmt.Errorf("%d regression(s) vs %s", len(regressions), oldPath)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within thresholds of %s\n",
		len(newDoc.Benchmarks), oldPath)
	return nil
}

func readDoc(path string) (*doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// compareBenches returns the failing regressions and the soft warnings.
func compareBenches(oldDoc, newDoc *doc, softThroughput bool) (regressions, warnings []string) {
	key := func(b benchLine) string { return b.Pkg + "." + b.Name }
	newRows := make(map[string]benchLine, len(newDoc.Benchmarks))
	for _, b := range newDoc.Benchmarks {
		newRows[key(b)] = b
	}
	for _, old := range oldDoc.Benchmarks {
		k := key(old)
		now, ok := newRows[k]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from new results", k))
			continue
		}
		oldEv, oldHasEv := old.Metrics["events/s"]
		newEv := now.Metrics["events/s"]
		if oldHasEv && oldEv > 0 && newEv < oldEv*(1-throughputTolerance) {
			msg := fmt.Sprintf("%s: events/s %.0f -> %.0f (%.1f%% drop, threshold %.0f%%)",
				k, oldEv, newEv, 100*(1-newEv/oldEv), 100*throughputTolerance)
			if softThroughput {
				warnings = append(warnings, msg)
			} else {
				regressions = append(regressions, msg)
			}
		}
		oldAl, oldHasAl := old.Metrics["allocs/op"]
		newAl := now.Metrics["allocs/op"]
		if oldHasAl && newAl > oldAl*(1+allocsTolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %.0f -> %.0f (hot path allocating again)", k, oldAl, newAl))
		}
		// events-simulated is a deterministic count (the planner's search
		// cost on a pinned space), so any growth at all means the search got
		// less effective — no tolerance.
		oldEs, oldHasEs := old.Metrics["events-simulated"]
		newEs := now.Metrics["events-simulated"]
		if oldHasEs && newEs > oldEs {
			regressions = append(regressions, fmt.Sprintf(
				"%s: events-simulated %.0f -> %.0f (search doing more work)", k, oldEs, newEs))
		}
	}
	return regressions, warnings
}
