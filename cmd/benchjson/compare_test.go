package main

import (
	"strings"
	"testing"
)

func mkDoc(events, allocs float64) *doc {
	return &doc{Benchmarks: []benchLine{{
		Pkg:  "tailbench/internal/cluster",
		Name: "SimCluster/plain",
		Metrics: map[string]float64{
			"events/s":  events,
			"allocs/op": allocs,
		},
	}}}
}

func TestCompareWithinThresholds(t *testing.T) {
	// 5% throughput drop and flat allocs: inside tolerance.
	reg, warn := compareBenches(mkDoc(1000000, 100), mkDoc(950000, 100), false)
	if len(reg) != 0 || len(warn) != 0 {
		t.Fatalf("got regressions %v warnings %v, want none", reg, warn)
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	reg, _ := compareBenches(mkDoc(1000000, 100), mkDoc(800000, 100), false)
	if len(reg) != 1 || !strings.Contains(reg[0], "events/s") {
		t.Fatalf("got %v, want one events/s regression", reg)
	}
}

func TestCompareSoftThroughput(t *testing.T) {
	reg, warn := compareBenches(mkDoc(1000000, 100), mkDoc(800000, 100), true)
	if len(reg) != 0 {
		t.Fatalf("soft mode still failed: %v", reg)
	}
	if len(warn) != 1 {
		t.Fatalf("got warnings %v, want one", warn)
	}
}

func TestCompareAllocsRegression(t *testing.T) {
	// Allocation growth hard-fails even in soft-throughput mode.
	reg, _ := compareBenches(mkDoc(1000000, 100), mkDoc(1000000, 110), true)
	if len(reg) != 1 || !strings.Contains(reg[0], "allocs/op") {
		t.Fatalf("got %v, want one allocs/op regression", reg)
	}
}

func mkPlanDoc(events float64) *doc {
	return &doc{Benchmarks: []benchLine{{
		Pkg:     "tailbench/internal/plan",
		Name:    "PlannerStudy/adaptive",
		Metrics: map[string]float64{"events-simulated": events},
	}}}
}

func TestCompareEventsSimulatedRegression(t *testing.T) {
	// events-simulated is deterministic: any growth fails, even in soft
	// mode; shrinking (the search getting cheaper) is fine.
	reg, _ := compareBenches(mkPlanDoc(50000), mkPlanDoc(50001), true)
	if len(reg) != 1 || !strings.Contains(reg[0], "events-simulated") {
		t.Fatalf("got %v, want one events-simulated regression", reg)
	}
	reg, _ = compareBenches(mkPlanDoc(50000), mkPlanDoc(40000), false)
	if len(reg) != 0 {
		t.Fatalf("cheaper search flagged as regression: %v", reg)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	reg, _ := compareBenches(mkDoc(1000000, 100), &doc{}, true)
	if len(reg) != 1 || !strings.Contains(reg[0], "missing") {
		t.Fatalf("got %v, want one missing-benchmark regression", reg)
	}
}
