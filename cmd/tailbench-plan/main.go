// Command tailbench-plan searches a configuration grid for the cheapest
// SLO-feasible configuration — the capacity-planning question the
// exhaustive grid answers by brute force. Per axis tuple (policy × shape ×
// controller × fan-out) it bisects the replica range for the minimal
// feasible count, early-aborts probes whose running windowed p99 has
// already blown the SLO, prunes tuples whose cheapest conceivable cost
// cannot beat the incumbent, and memoizes completed cells — typically
// 10-100x fewer simulated events than the grid, for the exact same answer.
//
// The frontier (one row per tuple: minimal feasible replicas, peak
// windowed p99, ReplicaSeconds cost) goes to -csv/-json; output is
// byte-identical at any -workers value.
//
// Example:
//
//	tailbench-plan -policies leastq,random -fanouts 1,4 \
//	  -slo 20ms -max-replicas 16 -csv frontier.csv -json frontier.json
//
// -study additionally measures the optimization stack: it re-runs the
// search as an exhaustive scan, exhaustive+abort, adaptive without memo,
// and fully adaptive, then reports each stage's simulated events (and
// writes them as a benchjson document via -bench, which CI diffs with
// `benchjson -compare` to catch the search getting less effective).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tailbench"
	"tailbench/internal/plan"
	"tailbench/sweep"
)

func main() {
	var (
		policies    = flag.String("policies", "leastq", "comma-separated balancer policies")
		shapes      = flag.String("shapes", "const", "semicolon-separated load shapes (\"const\" = steady arrivals at 70% capacity; others per tailbench.ParseLoadShape)")
		controllers = flag.String("controllers", "static", "comma-separated autoscaling controllers (\"static\" = fixed replica set)")
		fanouts     = flag.String("fanouts", "1", "comma-separated fan-out degrees (1 = single cluster, k>1 = front+shards pipeline)")
		replicas    = flag.Int("replicas", 4, "nominal replicas (sets the offered load; front tier for fan-out cells)")
		threads     = flag.Int("threads", 1, "threads per replica")
		requests    = flag.Int("requests", 400, "measured requests per cell")
		warmup      = flag.Int("warmup", 0, "warmup requests per cell (0 = 10% of requests, negative = none)")
		reps        = flag.Int("reps", 1, "replications per probe; feasibility requires every rep to hold the SLO")
		seed        = flag.Int64("seed", 1, "root seed; per-cell seeds are split from it by search coordinates")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers (output is identical for any value)")
		svcMean     = flag.Duration("service-mean", time.Millisecond, "mean of the synthetic exponential service-time distribution")
		window      = flag.Duration("window", 25*time.Millisecond, "windowed latency accounting width (must be positive: SLO verdicts are windowed)")
		slo         = flag.Duration("slo", 20*time.Millisecond, "latency SLO: peak windowed p99 a feasible configuration must stay under")
		minRepl     = flag.Int("min-replicas", 1, "replica search floor")
		maxRepl     = flag.Int("max-replicas", 16, "replica search ceiling")
		noAbort     = flag.Bool("disable-abort", false, "run every probe to completion (no SLO early abort)")
		noPrune     = flag.Bool("disable-prune", false, "never skip cost-dominated tuples")
		noMemo      = flag.Bool("disable-memo", false, "re-simulate frontier cells instead of reading the probe cache")
		exhaustive  = flag.Bool("exhaustive", false, "scan the full replica range instead of searching (the correctness oracle)")
		study       = flag.Bool("study", false, "measure each optimization stage against the exhaustive baseline")
		benchOut    = flag.String("bench", "", "with -study: write the stage measurements as a benchjson document to this file (\"-\" for stdout)")
		jsonOut     = flag.String("json", "", "write the frontier result as JSON to this file (\"-\" for stdout)")
		csvOut      = flag.String("csv", "", "write the frontier table as CSV to this file (\"-\" for stdout)")
	)
	flag.Parse()

	cfg := plan.Config{
		Grid: sweep.GridConfig{
			Axes: sweep.GridAxes{
				Policies:    splitList(*policies, ","),
				Controllers: splitList(*controllers, ","),
			},
			Replicas:    *replicas,
			Threads:     *threads,
			Requests:    *requests,
			Warmup:      *warmup,
			Reps:        *reps,
			Seed:        *seed,
			Workers:     *workers,
			ServiceMean: *svcMean,
			Window:      *window,
		},
		SLO:          *slo,
		MinReplicas:  *minRepl,
		MaxReplicas:  *maxRepl,
		DisableAbort: *noAbort,
		DisablePrune: *noPrune,
		DisableMemo:  *noMemo,
	}
	for _, spec := range splitList(*shapes, ";") {
		if spec == "const" {
			cfg.Grid.Axes.Shapes = append(cfg.Grid.Axes.Shapes, nil)
			continue
		}
		shape, err := tailbench.ParseLoadShape(spec)
		if err != nil {
			fatal(err)
		}
		cfg.Grid.Axes.Shapes = append(cfg.Grid.Axes.Shapes, shape)
	}
	for _, s := range splitList(*fanouts, ",") {
		k, err := strconv.Atoi(s)
		if err != nil || k < 1 {
			fatal(fmt.Errorf("bad fan-out %q", s))
		}
		cfg.Grid.Axes.FanOuts = append(cfg.Grid.Axes.FanOuts, k)
	}

	if *study {
		runStudy(cfg, *benchOut, *jsonOut, *csvOut)
		return
	}

	search := plan.Run
	if *exhaustive {
		search = plan.Exhaustive
	}
	start := time.Now() //lint:allow simtime CLI progress reporting, not simulation state
	res, err := search(cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start) //lint:allow simtime CLI progress reporting, not simulation state
	writeResult(res, *jsonOut, *csvOut)
	printSummary(res, elapsed)
}

// stage is one measured configuration of the optimization stack.
type stage struct {
	name   string
	run    func(plan.Config) (*plan.Result, error)
	mutate func(*plan.Config)
}

// runStudy measures the optimization stack stage by stage on the same
// search space: exhaustive scan, exhaustive with SLO abort, adaptive
// without memoization, fully adaptive. Every stage must agree on the
// optimum; the events-simulated column is what the stack buys.
func runStudy(cfg plan.Config, benchOut, jsonOut, csvOut string) {
	stages := []stage{
		{"exhaustive", plan.Exhaustive, func(c *plan.Config) { c.DisableAbort = true }},
		{"exhaustive-abort", plan.Exhaustive, func(c *plan.Config) {}},
		{"adaptive-nomemo", plan.Run, func(c *plan.Config) { c.DisableMemo = true }},
		{"adaptive", plan.Run, func(c *plan.Config) {}},
	}
	var (
		results []*plan.Result
		wall    []time.Duration
	)
	for _, st := range stages {
		c := cfg
		st.mutate(&c)
		start := time.Now() //lint:allow simtime CLI stage timing, not simulation state
		res, err := st.run(c)
		if err != nil {
			fatal(fmt.Errorf("stage %s: %w", st.name, err))
		}
		wall = append(wall, time.Since(start)) //lint:allow simtime CLI stage timing, not simulation state
		results = append(results, res)
	}
	base := results[0]
	for i, res := range results {
		if (res.Best == nil) != (base.Best == nil) ||
			(res.Best != nil && (res.Best.Tuple != base.Best.Tuple || res.Best.Replicas != base.Best.Replicas)) {
			fatal(fmt.Errorf("stage %s found a different optimum than the exhaustive baseline", stages[i].name))
		}
	}

	fmt.Fprintf(os.Stderr, "tailbench-plan: study over %d tuples, replica range [%d, %d]\n",
		base.Stats.Tuples, cfg.MinReplicas, cfg.MaxReplicas)
	fmt.Fprintf(os.Stderr, "%-18s %14s %9s %10s %9s %10s %9s\n",
		"stage", "events", "speedup", "cells-run", "aborted", "memoized", "pruned")
	for i, res := range results {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "%-18s %14d %8.1fx %10d %9d %10d %9d\n",
			stages[i].name, s.EventsSimulated,
			float64(base.Stats.EventsSimulated)/float64(s.EventsSimulated),
			s.CellsRun, s.CellsAborted, s.CellsMemoized, s.CellsPruned)
	}

	if benchOut != "" {
		if err := writeTo(benchOut, func(w io.Writer) error {
			return writeBench(w, stages, results, wall)
		}); err != nil {
			fatal(err)
		}
	}
	writeResult(results[len(results)-1], jsonOut, csvOut)
}

// benchDoc mirrors the benchjson document schema so the study output slots
// straight into the existing `benchjson -compare` regression gate.
type benchDoc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Benchmarks []benchLine `json:"benchmarks"`
}

type benchLine struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// writeBench renders the study as a benchjson document: one row per stage,
// events-simulated as the gated metric (deterministic — any growth is the
// search getting less effective) plus the trace counters for context.
func writeBench(w io.Writer, stages []stage, results []*plan.Result, wall []time.Duration) error {
	out := benchDoc{Goos: runtime.GOOS, Goarch: runtime.GOARCH}
	base := results[0].Stats.EventsSimulated
	for i, res := range results {
		s := res.Stats
		out.Benchmarks = append(out.Benchmarks, benchLine{
			Pkg:        "tailbench/internal/plan",
			Name:       "PlannerStudy/" + stages[i].name,
			Iterations: 1,
			NsPerOp:    float64(wall[i].Nanoseconds()),
			Metrics: map[string]float64{
				"events-simulated": float64(s.EventsSimulated),
				"speedup-events":   float64(base) / float64(s.EventsSimulated),
				"cells-run":        float64(s.CellsRun),
				"cells-aborted":    float64(s.CellsAborted),
				"cells-memoized":   float64(s.CellsMemoized),
				"cells-pruned":     float64(s.CellsPruned),
				"tuples-pruned":    float64(s.TuplesPruned),
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeResult writes the frontier to the requested sinks, defaulting to a
// CSV table on stdout when neither flag is set.
func writeResult(res *plan.Result, jsonOut, csvOut string) {
	wrote := false
	if jsonOut != "" {
		if err := writeTo(jsonOut, res.WriteJSON); err != nil {
			fatal(err)
		}
		wrote = true
	}
	if csvOut != "" {
		if err := writeTo(csvOut, res.WriteCSV); err != nil {
			fatal(err)
		}
		wrote = true
	}
	if !wrote {
		if err := res.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func printSummary(res *plan.Result, elapsed time.Duration) {
	s := res.Stats
	if res.Best != nil {
		fmt.Fprintf(os.Stderr,
			"tailbench-plan: best %s/%s/%s/k=%d at %d replicas (peak windowed p99 %v, %.4f replica-seconds)\n",
			res.Best.Policy, res.Best.Shape, res.Best.Controller, res.Best.FanOut,
			res.Best.Replicas, res.Best.PeakWindowP99, res.Best.ReplicaSeconds)
	} else {
		fmt.Fprintf(os.Stderr, "tailbench-plan: no feasible configuration under SLO %v\n", res.SLO)
	}
	fmt.Fprintf(os.Stderr,
		"tailbench-plan: %d/%d cells run (%d aborted, %d memoized, %d pruned), %d events simulated in %v\n",
		s.CellsRun, s.CellsTotal, s.CellsAborted, s.CellsMemoized, s.CellsPruned,
		s.EventsSimulated, elapsed.Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tailbench-plan:", err)
	os.Exit(1)
}

// splitList splits a separator-joined flag value, dropping empty tokens.
func splitList(s, sep string) []string {
	var out []string
	for _, tok := range strings.Split(s, sep) {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// writeTo streams write to the named file, or stdout for "-".
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
