// Command tailbench-sweep regenerates the data series behind the paper's
// tables and figures. Pick an experiment with -experiment; output is
// tab-separated so it can be piped into a plotting tool.
//
// Examples:
//
//	tailbench-sweep -experiment table1
//	tailbench-sweep -experiment fig3 -app xapian -full
//	tailbench-sweep -experiment fig8 -app moses
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tailbench"
	"tailbench/sweep"
)

func main() {
	var (
		experiment = flag.String("experiment", "table1", "one of: table1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, omission")
		appName    = flag.String("app", "", "application (default: the apps the paper uses for that figure)")
		full       = flag.Bool("full", false, "use full-fidelity options instead of quick ones")
	)
	flag.Parse()

	opts := sweep.Quick()
	if *full {
		opts = sweep.Full()
	}
	apps := tailbench.Apps()
	if *appName != "" {
		apps = []string{*appName}
	}

	var err error
	switch strings.ToLower(*experiment) {
	case "table1":
		err = runTableI(apps, opts)
	case "fig2":
		err = runFig2(apps, opts)
	case "fig3":
		err = runLoadCurves(apps, 1, opts)
	case "fig4":
		err = runThreadScaling(pick(apps, *appName, []string{"silo", "masstree", "xapian", "moses"}), opts)
	case "fig5":
		err = runConfigComparison(apps, 1, opts)
	case "fig6":
		err = runConfigComparison(pick(apps, *appName, []string{"shore", "img-dnn"}), 1, opts)
	case "fig7":
		err = runConfigComparison(pick(apps, *appName, []string{"specjbb", "masstree", "xapian", "img-dnn"}), 4, opts)
	case "fig8":
		err = runCaseStudy(pick(apps, *appName, []string{"moses", "silo"}), opts)
	case "omission":
		err = runOmission(apps, opts)
	default:
		err = fmt.Errorf("unknown experiment %q", *experiment)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench-sweep:", err)
		os.Exit(1)
	}
}

// pick returns override if set, otherwise the paper's default app list.
func pick(all []string, override string, defaults []string) []string {
	if override != "" {
		return []string{override}
	}
	_ = all
	return defaults
}

func runTableI(apps []string, opts sweep.Options) error {
	rows, err := sweep.TableI(apps, opts)
	if err != nil {
		return err
	}
	fmt.Println("app\tdomain\tmean_service\tp95@20%\tp95@50%\tp95@70%\tsaturation_qps")
	for _, r := range rows {
		fmt.Printf("%s\t%s\t%v\t%v\t%v\t%v\t%.0f\n",
			r.App, r.Domain, r.MeanSvc.Round(time.Microsecond),
			r.P95At20.Round(time.Microsecond), r.P95At50.Round(time.Microsecond),
			r.P95At70.Round(time.Microsecond), r.Saturation)
	}
	return nil
}

func runFig2(apps []string, opts sweep.Options) error {
	for _, app := range apps {
		cal, err := sweep.Calibrate(app, opts)
		if err != nil {
			return err
		}
		fmt.Printf("# %s service-time CDF (n=%d)\n", app, len(cal.ServiceSamples))
		fmt.Println("service_time_us\tcumulative_probability")
		for _, p := range cal.ServiceCDF {
			fmt.Printf("%.1f\t%.4f\n", float64(p.Value)/float64(time.Microsecond), p.Cumulative)
		}
	}
	return nil
}

func runLoadCurves(apps []string, threads int, opts sweep.Options) error {
	fmt.Println("app\tthreads\tload\tqps\tmean_us\tp95_us\tp99_us")
	for _, app := range apps {
		curve, err := sweep.LatencyVsLoad(app, tailbench.ModeIntegrated, threads, opts)
		if err != nil {
			return err
		}
		printCurve(curve)
	}
	return nil
}

func runThreadScaling(apps []string, opts sweep.Options) error {
	fmt.Println("app\tthreads\tload\tqps_per_thread\tp95_us")
	for _, app := range apps {
		curves, err := sweep.ThreadScaling(app, []int{1, 2, 4}, opts)
		if err != nil {
			return err
		}
		for _, c := range curves {
			for _, p := range c.Points {
				fmt.Printf("%s\t%d\t%.2f\t%.1f\t%.1f\n", c.App, c.Threads, p.Load,
					p.QPS/float64(c.Threads), us(p.P95))
			}
		}
	}
	return nil
}

func runConfigComparison(apps []string, threads int, opts sweep.Options) error {
	fmt.Println("app\tmode\tthreads\tload\tqps\tp95_us")
	for _, app := range apps {
		curves, err := sweep.ConfigComparison(app, threads, opts)
		if err != nil {
			return err
		}
		for _, c := range curves {
			for _, p := range c.Points {
				fmt.Printf("%s\t%s\t%d\t%.2f\t%.1f\t%.1f\n", c.App, c.Mode, c.Threads, p.Load, p.QPS, us(p.P95))
			}
		}
	}
	return nil
}

func runCaseStudy(apps []string, opts sweep.Options) error {
	fmt.Println("app\tseries\tload\tqps_per_thread\tnormalized_p95")
	for _, app := range apps {
		cs, err := sweep.CaseStudy(app, opts)
		if err != nil {
			return err
		}
		base := float64(cs.BaselineP95)
		if base == 0 {
			base = 1
		}
		series := map[string]*sweep.LoadCurve{
			"M/G/1": cs.MG1, "M/G/4": cs.MG4, "IdealMem-1thr": cs.Ideal1, "IdealMem-4thr": cs.Ideal4,
		}
		for name, c := range series {
			for _, p := range c.Points {
				fmt.Printf("%s\t%s\t%.2f\t%.1f\t%.2f\n", app, name, p.Load,
					p.QPS/float64(c.Threads), float64(p.P95)/base)
			}
		}
	}
	return nil
}

func runOmission(apps []string, opts sweep.Options) error {
	fmt.Println("app\tload\topen_loop_p95_us\tclosed_loop_p95_us\tunderestimate_factor")
	for _, app := range apps {
		res, err := sweep.CoordinatedOmission(app, 0.9, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%s\t%.2f\t%.1f\t%.1f\t%.2fx\n", app, res.Load, us(res.OpenLoopP95), us(res.ClosedLoopP95), res.UnderestimateFactor)
	}
	return nil
}

func printCurve(c *sweep.LoadCurve) {
	for _, p := range c.Points {
		fmt.Printf("%s\t%d\t%.2f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			c.App, c.Threads, p.Load, p.QPS, us(p.Mean), us(p.P95), us(p.P99))
	}
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
