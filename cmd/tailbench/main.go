// Command tailbench runs a single latency measurement of one TailBench
// application under one harness configuration and prints the latency
// statistics.
//
// Example:
//
//	tailbench -app masstree -mode integrated -qps 2000 -threads 2 -requests 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tailbench"
)

func main() {
	var (
		appName  = flag.String("app", "masstree", "application to run ("+strings.Join(tailbench.Apps(), ", ")+")")
		mode     = flag.String("mode", "integrated", "harness configuration: integrated, loopback, networked, simulated")
		qps      = flag.Float64("qps", 1000, "offered load in queries per second (0 = saturation)")
		threads  = flag.Int("threads", 1, "application worker threads")
		clients  = flag.Int("clients", 0, "client connections for loopback/networked modes (0 = auto)")
		requests = flag.Int("requests", 2000, "measured requests")
		warmup   = flag.Int("warmup", 0, "warmup requests (0 = 10% of requests)")
		scale    = flag.Float64("scale", 1.0, "application dataset scale")
		seed     = flag.Int64("seed", 1, "random seed")
		repeats  = flag.Int("repeats", 1, "repeated runs with fresh seeds")
		validate = flag.Bool("validate", false, "validate every response")
		netDelay = flag.Duration("netdelay", 25*time.Microsecond, "one-way synthetic network delay (networked mode)")
		ideal    = flag.Bool("idealmem", false, "idealized memory system (simulated mode)")
	)
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := tailbench.Run(tailbench.RunSpec{
		App:          *appName,
		Mode:         m,
		QPS:          *qps,
		Threads:      *threads,
		Clients:      *clients,
		Requests:     *requests,
		Warmup:       *warmup,
		Scale:        *scale,
		Seed:         *seed,
		Repeats:      *repeats,
		Validate:     *validate,
		NetworkDelay: *netDelay,
		IdealMemory:  *ideal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(1)
	}
	printResult(res)
}

func parseMode(s string) (tailbench.Mode, error) {
	switch strings.ToLower(s) {
	case "integrated":
		return tailbench.ModeIntegrated, nil
	case "loopback":
		return tailbench.ModeLoopback, nil
	case "networked":
		return tailbench.ModeNetworked, nil
	case "simulated":
		return tailbench.ModeSimulated, nil
	default:
		return 0, fmt.Errorf("tailbench: unknown mode %q", s)
	}
}

func printResult(res *tailbench.Result) {
	fmt.Printf("app         : %s\n", res.App)
	fmt.Printf("mode        : %s\n", res.Mode)
	fmt.Printf("threads     : %d\n", res.Threads)
	fmt.Printf("offered QPS : %.1f\n", res.OfferedQPS)
	fmt.Printf("achieved QPS: %.1f\n", res.AchievedQPS)
	fmt.Printf("requests    : %d (errors %d, runs %d)\n", res.Requests, res.Errors, res.Runs)
	row := func(name string, s tailbench.LatencyStats) {
		fmt.Printf("%-8s mean=%-12v p50=%-12v p95=%-12v p99=%-12v max=%v\n",
			name, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
			s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
	row("queue", res.Queue)
	row("service", res.Service)
	row("sojourn", res.Sojourn)
	if res.Runs > 1 {
		fmt.Printf("p95 95%% CI  : ±%.2f%%\n", res.P95CIRelative*100)
	}
}
