// Command tailbench runs a single latency measurement of one TailBench
// application under one harness configuration and prints the latency
// statistics.
//
// Example:
//
//	tailbench -app masstree -mode integrated -qps 2000 -threads 2 -requests 5000
//
// The cluster subcommand measures a multi-replica deployment behind a
// pluggable load balancer instead:
//
//	tailbench cluster -app masstree -policy jsq2 -replicas 4 -qps 8000 -slow 0:3
//
// With -autoscale, a controller grows and drains the replica set mid-run as
// the load shape plays out:
//
//	tailbench cluster -app xapian -mode simulated -replicas 2 \
//	  -autoscale threshold -max-replicas 8 -shape spike:1000,6000,2s,2s
//
// The pipeline subcommand chains clusters into a multi-tier topology with
// fan-out/fan-in edges and optional hedging, so a request's sojourn spans
// tiers (the "tail at scale" scenario):
//
//	tailbench pipeline -mode simulated -tiers xapian:2,xapian:16 \
//	  -fanout 16 -hedge 500us -qps 2000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"tailbench"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "cluster" {
		runCluster(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "pipeline" {
		runPipeline(os.Args[2:])
		return
	}
	var (
		appName  = flag.String("app", "masstree", "application to run ("+strings.Join(tailbench.Apps(), ", ")+")")
		mode     = flag.String("mode", "integrated", "harness configuration: integrated, loopback, networked, simulated")
		qps      = flag.Float64("qps", 1000, "offered load in queries per second (0 = saturation)")
		shapeArg = flag.String("shape", "", "time-varying load shape, e.g. diurnal:500,300,10s or spike:500,1500,5s,2s (overrides -qps; see tailbench.ParseLoadShape)")
		window   = flag.Duration("window", 0, "windowed latency accounting width (0 = automatic for time-varying shapes)")
		threads  = flag.Int("threads", 1, "application worker threads")
		clients  = flag.Int("clients", 0, "client connections for loopback/networked modes (0 = auto)")
		requests = flag.Int("requests", 2000, "measured requests")
		warmup   = flag.Int("warmup", 0, "warmup requests (0 = 10% of requests, negative = none)")
		scale    = flag.Float64("scale", 1.0, "application dataset scale")
		seed     = flag.Int64("seed", 1, "random seed")
		repeats  = flag.Int("repeats", 1, "repeated runs with fresh seeds")
		validate = flag.Bool("validate", false, "validate every response")
		netDelay = flag.Duration("netdelay", 25*time.Microsecond, "one-way synthetic network delay (networked mode)")
		ideal    = flag.Bool("idealmem", false, "idealized memory system (simulated mode)")
		jsonOut  = flag.String("json", "", "write the full result as JSON to this file (\"-\" for stdout)")
		obs      = addObsFlags(flag.CommandLine)
		prof     = addProfFlags(flag.CommandLine)
	)
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	shape, err := parseShape(*shapeArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(2)
	}
	reg, stopObs := obs.start()
	stopProf := prof.start()
	res, err := tailbench.Run(tailbench.RunSpec{
		App:          *appName,
		Mode:         m,
		QPS:          *qps,
		Load:         shape,
		Window:       *window,
		Threads:      *threads,
		Clients:      *clients,
		Requests:     *requests,
		Warmup:       *warmup,
		Scale:        *scale,
		Seed:         *seed,
		Repeats:      *repeats,
		Validate:     *validate,
		NetworkDelay: *netDelay,
		IdealMemory:  *ideal,
		Trace:        obs.spec(),
		Metrics:      reg,
	})
	stopProf()
	stopObs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(1)
	}
	obs.finish(res.Trace)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "tailbench:", err)
			os.Exit(1)
		}
		if *jsonOut == "-" {
			return
		}
	}
	printResult(res)
	printTraceReport(res.Trace)
}

// profOpts groups the profiling flags shared by every subcommand, so a hot
// path found in a sweep can be pinned down without writing a benchmark.
type profOpts struct {
	cpuPath string
	memPath string
}

// addProfFlags registers the profiling flags on a flag set.
func addProfFlags(fs *flag.FlagSet) *profOpts {
	o := &profOpts{}
	fs.StringVar(&o.cpuPath, "cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	fs.StringVar(&o.memPath, "memprofile", "", "write a heap profile (taken after the run) to this file")
	return o
}

// start begins CPU profiling if requested; the returned stop function
// flushes the CPU profile and takes the post-run heap profile.
func (o *profOpts) start() func() {
	var cpuFile *os.File
	if o.cpuPath != "" {
		f, err := os.Create(o.cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tailbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tailbench:", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if o.memPath != "" {
			runtime.GC()
			f, err := os.Create(o.memPath)
			if err == nil {
				err = pprof.WriteHeapProfile(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "tailbench: writing heap profile:", err)
				os.Exit(1)
			}
		}
	}
}

// obsOpts groups the observability flags shared by every subcommand: the
// Chrome trace export, the tail-attribution reservoir size, the live metrics
// endpoint, and the progress-line interval.
type obsOpts struct {
	tracePath   string
	topK        int
	traceWindow time.Duration
	metricsAddr string
	progress    time.Duration
}

// addObsFlags registers the observability flags on a flag set.
func addObsFlags(fs *flag.FlagSet) *obsOpts {
	o := &obsOpts{}
	fs.StringVar(&o.tracePath, "trace", "", "enable request tracing and write the retained span trees as Chrome trace-event JSON to this file (load in Perfetto)")
	fs.IntVar(&o.topK, "trace-topk", 0, "slowest span trees retained per window (implies tracing; 0 with -trace = 8)")
	fs.DurationVar(&o.traceWindow, "trace-window", 0, "tail-attribution window width (0 = whole run as one window)")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve live metrics over HTTP on this address (/metrics Prometheus text, /debug/vars expvar JSON)")
	fs.DurationVar(&o.progress, "progress", 0, "print a live metrics progress line to stderr at this interval (0 = off)")
	return o
}

// spec returns the TraceSpec implied by the flags; nil when tracing is off.
func (o *obsOpts) spec() *tailbench.TraceSpec {
	if o.tracePath == "" && o.topK <= 0 {
		return nil
	}
	return &tailbench.TraceSpec{TopK: o.topK, Window: o.traceWindow}
}

// start brings up the live metrics surface implied by the flags: the HTTP
// endpoint and/or the progress printer. It returns the registry to attach to
// the spec (nil when neither flag was set) and a stop function.
func (o *obsOpts) start() (*tailbench.MetricsRegistry, func()) {
	if o.metricsAddr == "" && o.progress <= 0 {
		return nil, func() {}
	}
	reg := tailbench.NewMetricsRegistry()
	var stops []func()
	if o.metricsAddr != "" {
		srv, err := tailbench.ServeMetrics(o.metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tailbench: serving metrics:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tailbench: serving live metrics on http://%s/metrics\n", srv.Addr())
		stops = append(stops, func() { srv.Close() })
	}
	if o.progress > 0 {
		stop := tailbench.StartMetricsProgress(reg, o.progress, func(line string) {
			fmt.Fprintln(os.Stderr, line)
		})
		stops = append(stops, stop)
	}
	return reg, func() {
		for _, s := range stops {
			s()
		}
	}
}

// finish writes the Chrome trace export if one was requested.
func (o *obsOpts) finish(rep *tailbench.TraceReport) {
	if rep == nil || o.tracePath == "" {
		return
	}
	f, err := os.Create(o.tracePath)
	if err == nil {
		err = tailbench.WriteChromeTrace(f, rep.Slowest)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench: writing trace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tailbench: wrote %d span trees to %s (open in ui.perfetto.dev)\n", len(rep.Slowest), o.tracePath)
}

// printTraceReport renders the tail-attribution breakdown: what the run's
// slowest requests were made of.
func printTraceReport(rep *tailbench.TraceReport) {
	if rep == nil || len(rep.Slowest) == 0 {
		return
	}
	fmt.Println()
	tailbench.WriteTraceAttribution(os.Stdout, rep)
}

func parseMode(s string) (tailbench.Mode, error) {
	return tailbench.ParseMode(strings.ToLower(s))
}

// parseShape turns the -shape flag into a LoadShape; an empty flag keeps the
// scalar -qps shorthand (nil shape).
func parseShape(s string) (tailbench.LoadShape, error) {
	if s == "" {
		return nil, nil
	}
	return tailbench.ParseLoadShape(s)
}

// printWindows renders the windowed latency series, the view that makes a
// time-varying run legible: offered vs achieved rate and the tail, window by
// window.
func printWindows(windows []tailbench.WindowStats) {
	if len(windows) == 0 {
		return
	}
	fmt.Println()
	tailbench.WriteWindowTable(os.Stdout, windows)
}

func printResult(res *tailbench.Result) {
	fmt.Printf("app         : %s\n", res.App)
	fmt.Printf("mode        : %s\n", res.Mode)
	if res.Shape != "" && res.Shape != "constant" {
		fmt.Printf("load shape  : %s\n", res.ShapeSpec)
	}
	fmt.Printf("threads     : %d\n", res.Threads)
	fmt.Printf("offered QPS : %.1f\n", res.OfferedQPS)
	fmt.Printf("achieved QPS: %.1f\n", res.AchievedQPS)
	fmt.Printf("requests    : %d (errors %d, runs %d)\n", res.Requests, res.Errors, res.Runs)
	row := func(name string, s tailbench.LatencyStats) {
		fmt.Printf("%-8s mean=%-12v p50=%-12v p95=%-12v p99=%-12v max=%v\n",
			name, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
			s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
	row("queue", res.Queue)
	row("service", res.Service)
	row("sojourn", res.Sojourn)
	if res.Runs > 1 {
		fmt.Printf("p95 95%% CI  : ±%.2f%%\n", res.P95CIRelative*100)
	}
	printWindows(res.Windows)
}

// runCluster implements the cluster subcommand.
func runCluster(args []string) {
	fs := flag.NewFlagSet("tailbench cluster", flag.ExitOnError)
	var (
		appName  = fs.String("app", "masstree", "application to run ("+strings.Join(tailbench.Apps(), ", ")+")")
		mode     = fs.String("mode", "integrated", "cluster execution path: integrated (in-process dispatch), loopback (each replica behind its own NetServer, client-side balancing), networked (loopback plus synthetic NIC/switch delay), or simulated (virtual time)")
		netDelay = fs.Duration("net-delay", 25*time.Microsecond, "one-way synthetic network delay per hop (networked mode)")
		policy   = fs.String("policy", "leastq", "balancer policy: "+strings.Join(tailbench.BalancerPolicies(), ", "))
		replicas = fs.Int("replicas", 2, "number of replica servers")
		threads  = fs.String("threads", "1", "worker threads per replica: a single count (\"2\") or a per-replica vector (\"4,4,1,1\") for heterogeneous clusters")
		qps      = fs.Float64("qps", 2000, "cluster-wide offered load in queries per second (0 = saturation)")
		shapeArg = fs.String("shape", "", "time-varying load shape, e.g. spike:500,1500,5s,2s (overrides -qps; see tailbench.ParseLoadShape)")
		window   = fs.Duration("window", 0, "windowed latency accounting width (0 = automatic for time-varying shapes)")
		requests = fs.Int("requests", 2000, "measured requests")
		warmup   = fs.Int("warmup", 0, "warmup requests (0 = 10% of requests, negative = none)")
		scale    = fs.Float64("scale", 1.0, "application dataset scale")
		seed     = fs.Int64("seed", 1, "random seed")
		validate = fs.Bool("validate", false, "validate every response (integrated mode)")
		slow     = fs.String("slow", "", "straggler injection as comma-separated index:factor pairs, e.g. 0:3,2:1.5")
		jsonOut  = fs.String("json", "", "write the full result as JSON to this file (\"-\" for stdout)")

		autoscale = fs.String("autoscale", "", "autoscaling controller policy: "+strings.Join(tailbench.ControllerPolicies(), ", ")+" (empty = fixed membership)")
		minRepl   = fs.Int("min-replicas", 0, "autoscaler lower bound on active replicas (0 = 1)")
		maxRepl   = fs.Int("max-replicas", 0, "autoscaler upper bound / warm pool size (0 = 2x -replicas)")
		interval  = fs.Duration("control-interval", 0, "autoscaler control-tick period (0 = 100ms)")
		scaleHigh = fs.Float64("scale-high", 0, "threshold policy: scale up above this mean queue depth per replica (0 = 3)")
		scaleLow  = fs.Float64("scale-low", 0, "threshold policy: drain below this mean queue depth per replica (0 = 0.5)")
		targetP95 = fs.Duration("target-p95", 0, "target-p95 policy: windowed p95 sojourn goal (0 = 10ms)")
		provDelay = fs.Duration("provision-delay", 0, "cold-start latency before a scaled-up replica turns active (0 = instant warm pool)")
		drainPol  = fs.String("drain-policy", "", "scale-down victim policy: "+strings.Join(tailbench.DrainPolicies(), ", ")+" (empty = youngest)")
		obs       = addObsFlags(fs)
		prof      = addProfFlags(fs)
	)
	fs.Parse(args)

	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	shape, err := parseShape(*shapeArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(2)
	}
	baseThreads, threadsPer, err := parseThreadsSpec(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(2)
	}
	var autoSpec *tailbench.AutoscaleSpec
	if *autoscale != "" {
		autoSpec = &tailbench.AutoscaleSpec{
			Policy:         *autoscale,
			MinReplicas:    *minRepl,
			MaxReplicas:    *maxRepl,
			Interval:       *interval,
			HighDepth:      *scaleHigh,
			LowDepth:       *scaleLow,
			TargetP95:      *targetP95,
			ProvisionDelay: *provDelay,
			DrainPolicy:    *drainPol,
		}
	} else if *minRepl != 0 || *maxRepl != 0 || *interval != 0 || *scaleHigh != 0 || *scaleLow != 0 || *targetP95 != 0 || *provDelay != 0 || *drainPol != "" {
		// Tuning flags without a controller would be silently ignored and
		// the run would stay a fixed cluster — almost certainly not what
		// the user meant.
		fmt.Fprintln(os.Stderr, "tailbench: autoscaler tuning flags require -autoscale <policy> ("+strings.Join(tailbench.ControllerPolicies(), ", ")+")")
		os.Exit(2)
	}
	reg, stopObs := obs.start()
	stopProf := prof.start()
	spec := tailbench.ClusterSpec{
		App:               *appName,
		Mode:              m,
		Policy:            *policy,
		Replicas:          *replicas,
		Threads:           baseThreads,
		ThreadsPerReplica: threadsPer,
		QPS:               *qps,
		Load:              shape,
		Window:            *window,
		Requests:          *requests,
		Warmup:            *warmup,
		Scale:             *scale,
		Seed:              *seed,
		Validate:          *validate,
		NetworkDelay:      *netDelay,
		Autoscale:         autoSpec,
		Trace:             obs.spec(),
		Metrics:           reg,
	}
	// Straggler factors are per pool slot: with autoscaling the pool is the
	// autoscaler's resolved upper bound, not just the initial replica
	// count. ReplicaPool applies the spec's own defaulting, so -slow is
	// validated against exactly the pool RunCluster will build.
	slowdowns, err := parseSlowdowns(*slow, spec.ReplicaPool())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(2)
	}
	spec.Slowdowns = slowdowns
	res, err := tailbench.RunCluster(spec)
	stopProf()
	stopObs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(1)
	}
	obs.finish(res.Trace)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "tailbench:", err)
			os.Exit(1)
		}
		if *jsonOut == "-" {
			return
		}
	}
	printClusterResult(res)
	printTraceReport(res.Trace)
}

// parseThreadsSpec parses the cluster -threads flag: a single count applies
// to every replica; a comma-separated vector assigns per-replica counts (the
// vector length must equal the replica pool, which RunCluster validates).
// The homogeneous base count for a vector is its maximum, so shared
// resources sized off Threads fit the largest replica.
func parseThreadsSpec(s string) (int, []int, error) {
	parts := strings.Split(s, ",")
	if len(parts) == 1 {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return 0, nil, fmt.Errorf("bad -threads count %q", s)
		}
		return n, nil, nil
	}
	per := make([]int, len(parts))
	max := 1
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return 0, nil, fmt.Errorf("bad -threads entry %q", p)
		}
		per[i] = n
		if n > max {
			max = n
		}
	}
	return max, per, nil
}

// runPipeline implements the pipeline subcommand: a chain of clusters with
// fan-out/fan-in edges and optional per-edge hedging.
func runPipeline(args []string) {
	fs := flag.NewFlagSet("tailbench pipeline", flag.ExitOnError)
	var (
		tiersArg = fs.String("tiers", "masstree:2,masstree:4", "tier chain, front-end first, as comma-separated app:replicas[:threads] entries")
		fanout   = fs.String("fanout", "", "per-edge fan-out degrees for tiers 1..N-1, comma-separated (one value broadcasts to every edge; empty = 1)")
		hedgeArg = fs.String("hedge", "", "per-edge hedging budgets for tiers 1..N-1, comma-separated durations; prefix rtt-floor+ to anchor a budget on the edge's observed round-trip floor (one value broadcasts; 0 or empty = no hedging)")
		mode     = fs.String("mode", "simulated", "execution path: integrated (live replicas, in-process edges), loopback/networked (live, every edge crosses TCP with client-side balancing), or simulated (virtual time)")
		netDelay = fs.Duration("net-delay", 25*time.Microsecond, "one-way synthetic network delay per hop (networked mode)")
		policy   = fs.String("policy", "leastq", "balancer policy for every tier: "+strings.Join(tailbench.BalancerPolicies(), ", "))
		qps      = fs.Float64("qps", 1000, "root arrival rate in queries per second (0 = saturation)")
		shapeArg = fs.String("shape", "", "time-varying root load shape, e.g. spike:500,1500,5s,2s (overrides -qps)")
		window   = fs.Duration("window", 0, "windowed latency accounting width (0 = automatic for time-varying shapes)")
		requests = fs.Int("requests", 2000, "measured root requests")
		warmup   = fs.Int("warmup", 0, "warmup root requests (0 = 10% of requests, negative = none)")
		scale    = fs.Float64("scale", 1.0, "application dataset scale (every tier)")
		seed     = fs.Int64("seed", 1, "random seed")
		jsonOut  = fs.String("json", "", "write the full result as JSON to this file (\"-\" for stdout)")
		obs      = addObsFlags(fs)
		prof     = addProfFlags(fs)
	)
	fs.Parse(args)

	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	shape, err := parseShape(*shapeArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(2)
	}
	tiers, err := parseTiers(*tiersArg, *fanout, *hedgeArg, *policy, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(2)
	}
	reg, stopObs := obs.start()
	stopProf := prof.start()
	res, err := tailbench.RunPipeline(tailbench.PipelineSpec{
		Mode:         m,
		Tiers:        tiers,
		QPS:          *qps,
		Load:         shape,
		Window:       *window,
		Requests:     *requests,
		Warmup:       *warmup,
		Seed:         *seed,
		NetworkDelay: *netDelay,
		Trace:        obs.spec(),
		Metrics:      reg,
	})
	stopProf()
	stopObs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(1)
	}
	obs.finish(res.Trace)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "tailbench:", err)
			os.Exit(1)
		}
		if *jsonOut == "-" {
			return
		}
	}
	printPipelineResult(res)
	printTraceReport(res.Trace)
}

// parseTiers turns "-tiers xapian:2,masstree:16 -fanout 16 -hedge 500us"
// into the tier chain. Edge vectors (-fanout, -hedge) cover tiers 1..N-1; a
// single value broadcasts to every edge.
func parseTiers(tiersArg, fanoutArg, hedgeArg, policy string, scale float64) ([]tailbench.TierSpec, error) {
	entries := strings.Split(tiersArg, ",")
	if len(entries) == 0 || tiersArg == "" {
		return nil, fmt.Errorf("-tiers must name at least one tier")
	}
	fanouts, err := parseEdgeInts(fanoutArg, len(entries)-1)
	if err != nil {
		return nil, fmt.Errorf("bad -fanout: %w", err)
	}
	hedges, err := parseEdgeHedges(hedgeArg, len(entries)-1)
	if err != nil {
		return nil, fmt.Errorf("bad -hedge: %w", err)
	}
	tiers := make([]tailbench.TierSpec, 0, len(entries))
	for i, entry := range entries {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad -tiers entry %q (want app:replicas[:threads])", entry)
		}
		replicas, err := strconv.Atoi(parts[1])
		if err != nil || replicas < 1 {
			return nil, fmt.Errorf("bad -tiers replica count %q", parts[1])
		}
		threads := 1
		if len(parts) == 3 {
			threads, err = strconv.Atoi(parts[2])
			if err != nil || threads < 1 {
				return nil, fmt.Errorf("bad -tiers thread count %q", parts[2])
			}
		}
		t := tailbench.TierSpec{Cluster: tailbench.ClusterSpec{
			App: parts[0], Policy: policy, Replicas: replicas, Threads: threads, Scale: scale,
		}}
		if i > 0 {
			t.FanOut = fanouts[i-1]
			t.Hedge = hedges[i-1]
		}
		tiers = append(tiers, t)
	}
	return tiers, nil
}

// parseEdgeInts parses a comma-separated int vector of length edges; empty
// means all-1 and a single value broadcasts.
func parseEdgeInts(s string, edges int) ([]int, error) {
	out := make([]int, edges)
	for i := range out {
		out[i] = 1
	}
	if s == "" || edges == 0 {
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 1 && len(parts) != edges {
		return nil, fmt.Errorf("%d values for %d edges", len(parts), edges)
	}
	for i := range out {
		p := parts[0]
		if len(parts) > 1 {
			p = parts[i]
		}
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad degree %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// parseEdgeHedges parses the -hedge edge vector of length edges: each entry
// is a plain duration budget, or "rtt-floor+<duration>" to anchor the budget
// on the edge's observed round-trip floor. Empty or "0" disables hedging on
// that edge, and a single value broadcasts.
func parseEdgeHedges(s string, edges int) ([]*tailbench.HedgeSpec, error) {
	out := make([]*tailbench.HedgeSpec, edges)
	if s == "" || edges == 0 {
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 1 && len(parts) != edges {
		return nil, fmt.Errorf("%d values for %d edges", len(parts), edges)
	}
	for i := range out {
		p := strings.TrimSpace(parts[0])
		if len(parts) > 1 {
			p = strings.TrimSpace(parts[i])
		}
		if p == "0" || p == "" {
			continue
		}
		rttFloor := false
		if rest, ok := strings.CutPrefix(p, "rtt-floor+"); ok {
			rttFloor = true
			p = rest
		}
		d, err := time.ParseDuration(p)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad hedge %q", p)
		}
		out[i] = &tailbench.HedgeSpec{Delay: d, RTTFloor: rttFloor}
	}
	return out, nil
}

func printPipelineResult(res *tailbench.PipelineResult) {
	fmt.Printf("topology    : %s\n", res.Label)
	fmt.Printf("mode        : pipeline/%s\n", res.Mode)
	if res.Shape != "" && res.Shape != "constant" {
		fmt.Printf("load shape  : %s\n", res.ShapeSpec)
	}
	fmt.Printf("offered QPS : %.1f (root requests)\n", res.OfferedQPS)
	fmt.Printf("achieved QPS: %.1f\n", res.AchievedQPS)
	fmt.Printf("requests    : %d (errors %d)\n", res.Requests, res.Errors)
	s := res.Sojourn
	fmt.Printf("end-to-end  : mean=%-12v p50=%-12v p95=%-12v p99=%-12v max=%v\n",
		s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	printWindows(res.Windows)
	fmt.Println()
	res.WriteTierTable(os.Stdout)
	for _, t := range res.Tiers {
		if t.Controller != "" {
			fmt.Printf("\n%s autoscale: %s [%d..%d], tick %v — peak %d replicas, %.1f replica-seconds, %d scaling events\n",
				t.Name, t.Controller, t.MinReplicas, t.MaxReplicas, t.ControlInterval,
				t.PeakReplicas, t.ReplicaSeconds, len(t.ScalingEvents))
		}
	}
}

// parseSlowdowns turns "0:3,2:1.5" into a dense per-replica factor slice.
func parseSlowdowns(s string, replicas int) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make([]float64, replicas)
	for i := range out {
		out[i] = 1
	}
	seen := make(map[int]bool, replicas)
	for _, pair := range strings.Split(s, ",") {
		idxStr, facStr, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			return nil, fmt.Errorf("bad -slow entry %q (want index:factor)", pair)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 || idx >= replicas {
			return nil, fmt.Errorf("bad -slow replica index %q (cluster has %d replicas)", idxStr, replicas)
		}
		if seen[idx] {
			return nil, fmt.Errorf("duplicate -slow entry for replica %d", idx)
		}
		seen[idx] = true
		fac, err := strconv.ParseFloat(facStr, 64)
		if err != nil || math.IsNaN(fac) || math.IsInf(fac, 0) || fac < 1 {
			return nil, fmt.Errorf("bad -slow factor %q (want a finite number >= 1)", facStr)
		}
		out[idx] = fac
	}
	return out, nil
}

// writeJSON marshals v to path ("-" means stdout).
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func printClusterResult(res *tailbench.ClusterResult) {
	fmt.Printf("app         : %s\n", res.App)
	fmt.Printf("mode        : cluster/%s\n", res.Mode)
	if res.Shape != "" && res.Shape != "constant" {
		fmt.Printf("load shape  : %s\n", res.ShapeSpec)
	}
	fmt.Printf("policy      : %s\n", res.Policy)
	fmt.Printf("replicas    : %d x %d threads\n", res.Replicas, res.Threads)
	if res.Controller != "" {
		fmt.Printf("autoscale   : %s [%d..%d], tick %v\n",
			res.Controller, res.MinReplicas, res.MaxReplicas, res.ControlInterval)
		fmt.Printf("elasticity  : peak %d replicas, %.1f replica-seconds, %d scaling events\n",
			res.PeakReplicas, res.ReplicaSeconds, len(res.ScalingEvents))
	}
	fmt.Printf("offered QPS : %.1f\n", res.OfferedQPS)
	fmt.Printf("achieved QPS: %.1f\n", res.AchievedQPS)
	fmt.Printf("requests    : %d (errors %d)\n", res.Requests, res.Errors)
	row := func(name string, s tailbench.LatencyStats) {
		fmt.Printf("%-8s mean=%-12v p50=%-12v p95=%-12v p99=%-12v max=%v\n",
			name, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
			s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
	row("queue", res.Queue)
	row("service", res.Service)
	row("sojourn", res.Sojourn)
	printWindows(res.Windows)
	fmt.Println()
	res.WriteReplicaTable(os.Stdout)
}
